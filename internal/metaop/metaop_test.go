package metaop

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cost"
	"repro/internal/model"
)

func mkConv(name string, k, w int, wid uint64) model.Operation {
	return model.Operation{Name: name, Type: model.OpConv2D,
		Shape:     model.Shape{KernelH: k, KernelW: k, InChannels: w, OutChannels: w, Stride: 1},
		WeightsID: wid}
}

func mkChain(name string, ops ...model.Operation) *model.Graph {
	b := model.NewBuilder(name, "test", name)
	for _, op := range ops {
		b.Add(op)
	}
	return b.Graph()
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindReplace: "replace", KindReshape: "reshape", KindReduce: "reduce",
		KindAdd: "add", KindEdge: "edge",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
	if len(Kinds()) != 5 {
		t.Error("Kinds() should list 5 meta-operators")
	}
}

func TestApplyReplaceOnly(t *testing.T) {
	prof := cost.CPU()
	src := mkChain("src", mkConv("c", 3, 8, 1))
	dst := mkChain("dst", mkConv("c", 3, 8, 2))
	p := &Plan{
		SrcName: "src", DstName: "dst",
		Steps: []Step{{Kind: KindReplace, SrcID: 0, DstID: 0, Dst: *dst.Op(0)}},
	}
	got, elapsed, err := Apply(prof, p, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(dst) {
		t.Fatal("replace did not produce destination")
	}
	if want := prof.ReplaceCost(dst.Op(0)); elapsed != want {
		t.Errorf("elapsed %v, want %v", elapsed, want)
	}
	// Source untouched.
	if src.Op(0).WeightsID != 1 {
		t.Error("Apply mutated the source graph")
	}
}

func TestApplySafeguardPath(t *testing.T) {
	prof := cost.CPU()
	src := mkChain("src", mkConv("c", 3, 8, 1))
	dst := mkChain("dst", mkConv("c", 5, 16, 2), mkConv("c2", 3, 16, 3))
	p := &Plan{LoadFromScratch: true}
	got, elapsed, err := Apply(prof, p, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(dst) {
		t.Fatal("safeguard path did not produce destination")
	}
	if want := prof.ModelLoad(dst).Total(); elapsed != want {
		t.Errorf("safeguard elapsed %v, want scratch load %v", elapsed, want)
	}
	if got == dst {
		t.Error("safeguard should return a clone, not the registry graph")
	}
}

func TestApplyRejectsMalformedPlans(t *testing.T) {
	prof := cost.CPU()
	src := mkChain("src", mkConv("c", 3, 8, 1))
	dst := mkChain("dst", mkConv("c", 3, 8, 2))

	cases := []struct {
		name string
		plan *Plan
	}{
		{"dst id out of range", &Plan{Steps: []Step{{Kind: KindReplace, SrcID: 0, DstID: 5, Dst: *dst.Op(0)}}}},
		{"missing src op", &Plan{Steps: []Step{{Kind: KindReplace, SrcID: 9, DstID: 0, Dst: *dst.Op(0)}}}},
		{"missing reduce src", &Plan{Steps: []Step{{Kind: KindReduce, SrcID: 9, DstID: -1}}}},
		{"unknown kind", &Plan{Steps: []Step{{Kind: Kind(77)}}}},
		{"conflicting slots", &Plan{Steps: []Step{
			{Kind: KindAdd, SrcID: -1, DstID: 0, Dst: mkConv("x", 3, 8, 7)},
			{Kind: KindAdd, SrcID: -1, DstID: 0, Dst: mkConv("y", 5, 8, 8)},
		}}},
	}
	for _, c := range cases {
		if _, _, err := Apply(prof, c.plan, src, dst); err == nil {
			t.Errorf("%s: Apply accepted malformed plan", c.name)
		}
	}
}

func TestCountAndCostByKind(t *testing.T) {
	p := &Plan{Steps: []Step{
		{Kind: KindReplace, EstCost: 2 * time.Millisecond},
		{Kind: KindReplace, EstCost: 3 * time.Millisecond},
		{Kind: KindAdd, EstCost: 10 * time.Millisecond},
		{Kind: KindEdge, EstCost: 50 * time.Microsecond},
	}}
	counts := p.CountByKind()
	if counts[KindReplace] != 2 || counts[KindAdd] != 1 || counts[KindEdge] != 1 {
		t.Errorf("CountByKind = %v", counts)
	}
	costs := p.CostByKind()
	if costs[KindReplace] != 5*time.Millisecond {
		t.Errorf("CostByKind[replace] = %v", costs[KindReplace])
	}
}

func TestTrueCostSumsSteps(t *testing.T) {
	prof := cost.CPU()
	src := mkChain("src", mkConv("c1", 3, 8, 1), mkConv("c2", 3, 8, 2))
	dst := mkChain("dst", mkConv("c1", 5, 8, 3))
	p := &Plan{Steps: []Step{
		{Kind: KindReshape, SrcID: 0, DstID: 0, Dst: *dst.Op(0)},
		{Kind: KindReplace, SrcID: 0, DstID: 0, Dst: *dst.Op(0)},
		{Kind: KindReduce, SrcID: 1, DstID: -1},
		{Kind: KindEdge, EdgeFrom: 0, EdgeTo: 1},
	}}
	want := prof.ReshapeCost(src.Op(0), dst.Op(0)) +
		prof.ReplaceCost(dst.Op(0)) +
		prof.ReduceCost(src.Op(1)) +
		prof.EdgeCost(1)
	if got := p.TrueCost(prof, src); got != want {
		t.Errorf("TrueCost = %v, want %v", got, want)
	}
	gotGraph, elapsed, err := Apply(prof, p, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != want {
		t.Errorf("Apply elapsed %v, want %v", elapsed, want)
	}
	if !gotGraph.Equal(dst) {
		t.Error("transform result mismatch")
	}
}

// TestQuickReplacePlansAlwaysVerify is a property test: for any pair of
// same-structure weight-variant chains, the all-Replace plan reproduces the
// destination exactly.
func TestQuickReplacePlansAlwaysVerify(t *testing.T) {
	prof := cost.CPU()
	f := func(kernels []uint8, seed uint32) bool {
		if len(kernels) == 0 {
			kernels = []uint8{3}
		}
		if len(kernels) > 12 {
			kernels = kernels[:12]
		}
		var srcOps, dstOps []model.Operation
		for i, k := range kernels {
			kk := int(k%5) + 1
			w := 4 + int(k%8)
			srcOps = append(srcOps, mkConv(string(rune('a'+i%26)), kk, w, uint64(seed)+uint64(i)*2+1))
			dstOps = append(dstOps, mkConv(string(rune('a'+i%26)), kk, w, uint64(seed)+uint64(i)*2+2))
		}
		src, dst := mkChain("s", srcOps...), mkChain("d", dstOps...)
		var steps []Step
		for j := range dstOps {
			steps = append(steps, Step{Kind: KindReplace, SrcID: j, DstID: j, Dst: *dst.Op(j)})
		}
		return Verify(prof, &Plan{Steps: steps}, src, dst) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
