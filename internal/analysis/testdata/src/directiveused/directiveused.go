// Package directiveused exercises suppression: one violation carries a
// trailing directive and must be silenced; an identical violation without a
// directive must still be reported.
package directiveused

import "math/rand"

func suppressed() int {
	return rand.Intn(3) //optimus:allow globalrand — fixture: documented exception
}

func reported() int {
	return rand.Intn(5)
}

func standalone() int {
	//optimus:allow globalrand — fixture: standalone directive covers the next line
	return rand.Intn(7)
}
