package faults

import "testing"

func TestNilAndDisabledInjectorNeverFire(t *testing.T) {
	var nilInj *Injector
	for e := Event(0); e < eventCount; e++ {
		if nilInj.Fire(e) {
			t.Errorf("nil injector fired %v", e)
		}
	}
	if nilInj.Total() != 0 || nilInj.Count(Crash) != 0 {
		t.Error("nil injector has nonzero counts")
	}
	if New(1, Rates{}) != nil {
		t.Error("zero rates should yield a nil injector")
	}
	if (Rates{}).Enabled() {
		t.Error("zero rates reported enabled")
	}
}

func TestZeroRateEventConsumesNoRandomness(t *testing.T) {
	// Two injectors with the same seed: one is also asked about an event
	// whose rate is zero. The fault sequence for the nonzero event must be
	// identical — zero-rate queries must not advance the PRNG.
	a := New(7, Rates{Transform: 0.5})
	b := New(7, Rates{Transform: 0.5})
	for i := 0; i < 1000; i++ {
		b.Fire(Crash) // rate 0: must be a no-op
		if a.Fire(Transform) != b.Fire(Transform) {
			t.Fatalf("fault sequences diverged at draw %d", i)
		}
	}
	if b.Count(Crash) != 0 {
		t.Errorf("zero-rate event fired %d times", b.Count(Crash))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(seed, Rates{Transform: 0.3, Crash: 0.1})
		out := make([]bool, 0, 2000)
		for i := 0; i < 1000; i++ {
			out = append(out, inj.Fire(Transform), inj.Fire(Crash))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestFireFrequencyTracksRate(t *testing.T) {
	inj := New(1, Rates{Load: 0.25})
	const n = 20000
	for i := 0; i < n; i++ {
		inj.Fire(Load)
	}
	got := float64(inj.Count(Load)) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("rate 0.25 fired %.3f of draws", got)
	}
	if inj.Total() != inj.Count(Load) {
		t.Errorf("Total %d != Count %d", inj.Total(), inj.Count(Load))
	}
}

func TestEventStrings(t *testing.T) {
	for e, want := range map[Event]string{Transform: "transform", Load: "load", Crash: "crash", Outage: "outage",
		Slow: "slow", Flaky: "flaky", Bandwidth: "bandwidth"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
	if Event(99).String() != "event(99)" {
		t.Errorf("unknown event string = %q", Event(99).String())
	}
}

func TestGrayRatesEnableInjector(t *testing.T) {
	for _, r := range []Rates{{Slow: 0.1}, {Flaky: 0.1}, {Bandwidth: 0.1}} {
		if !r.Enabled() {
			t.Errorf("rates %+v reported disabled", r)
		}
		if New(1, r) == nil {
			t.Errorf("rates %+v yielded a nil injector", r)
		}
	}
}
