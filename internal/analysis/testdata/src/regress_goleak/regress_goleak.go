// Package regress_goleak memorializes the unjoined-worker shape the
// goroutinejoin checker exists to keep out of the supervision stack: a
// restart loop that spawns a monitor goroutine with no join signal leaks
// one goroutine per restart, unobservable until the process bloats. The
// joined shape (WaitGroup handshake) must stay silent so the production
// supervisor's current form never regresses into a finding.
package regress_goleak

import "sync"

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

func (w *worker) monitorPreFix() {
	go func() { // want "no reachable join or termination signal"
		for {
			poll()
		}
	}()
}

func (w *worker) monitorFixed() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			select {
			case <-w.stop:
				return
			default:
				poll()
			}
		}
	}()
}

func poll() {}
