package planner

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Cache implements the planning-strategy cache of §4.4 Module 3: plans are
// computed offline when models register and read back at transformation time,
// so the online path does no planning work. Keys are (source structure hash,
// source weights hash, destination structure hash, destination weights hash)
// — two models with identical structure but different weights transform
// differently (Replace steps), so weights participate in the key.
//
// The cache is optionally bounded: NewCacheBounded evicts the least recently
// used plan once the bound is exceeded, so a gateway serving an unbounded
// model churn holds at most `limit` plans. Concurrent GetOrPlan calls for the
// same (src, dst) pair are deduplicated via singleflight: exactly one caller
// plans while the rest wait for its result, so a burst of registrations never
// repeats planning work.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*list.Element
	// lru orders entries most-recently-used first; evictions pop the back.
	lru *list.List
	// limit bounds len(m); zero means unbounded.
	limit int
	// flights tracks in-progress GetOrPlan computations for singleflight
	// deduplication.
	flights map[cacheKey]*flight
	// ids memoizes per-graph hash pairs. Graphs handed out by the zoo
	// registries are immutable by convention (containers hold clones), so
	// pointer-keyed memoization is safe and makes the online cache lookup
	// O(1) instead of re-hashing both graphs.
	ids map[*model.Graph]graphID

	hits, misses int
	// planned counts plans actually computed through GetOrPlan; deduped
	// counts callers that piggybacked on another goroutine's in-flight
	// computation instead of planning themselves.
	planned, deduped int
	// evictions counts plans dropped by the LRU bound.
	evictions int
	// planTimes is the per-pair planning-time telemetry recorded around every
	// Plan call GetOrPlan performs: a streaming log-linear digest (O(1) per
	// observation, no retained samples) with exact count/total/max.
	planTimes metrics.DurationDigest
}

type graphID struct{ structure, weights uint64 }

type cacheKey struct {
	src, dst graphID
}

// entry is an LRU list element payload.
type entry struct {
	key  cacheKey
	plan *metaop.Plan
}

// flight is one in-progress plan computation; waiters block on done.
type flight struct {
	done chan struct{}
	plan *metaop.Plan
}

// NewCache returns an empty, unbounded plan cache.
func NewCache() *Cache { return NewCacheBounded(0) }

// NewCacheBounded returns an empty plan cache holding at most limit plans
// (LRU-evicted beyond it); limit <= 0 means unbounded.
func NewCacheBounded(limit int) *Cache {
	if limit < 0 {
		limit = 0
	}
	return &Cache{
		m:       make(map[cacheKey]*list.Element),
		lru:     list.New(),
		limit:   limit,
		flights: make(map[cacheKey]*flight),
		ids:     make(map[*model.Graph]graphID),
	}
}

// idFor must be called with c.mu held.
func (c *Cache) idFor(g *model.Graph) graphID {
	if id, ok := c.ids[g]; ok {
		return id
	}
	id := graphID{structure: g.StructureHash(), weights: g.WeightsHash()}
	c.ids[g] = id
	return id
}

func (c *Cache) keyFor(src, dst *model.Graph) cacheKey {
	return cacheKey{src: c.idFor(src), dst: c.idFor(dst)}
}

// lookup must be called with c.mu held; it counts the hit/miss and
// freshens the LRU position.
func (c *Cache) lookup(k cacheKey) (*metaop.Plan, bool) {
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).plan, true
}

// insert must be called with c.mu held; it stores (or refreshes) the plan
// and applies the LRU bound.
func (c *Cache) insert(k cacheKey, p *metaop.Plan) {
	if el, ok := c.m[k]; ok {
		el.Value.(*entry).plan = p
		c.lru.MoveToFront(el)
		return
	}
	c.m[k] = c.lru.PushFront(&entry{key: k, plan: p})
	for c.limit > 0 && len(c.m) > c.limit {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.lru.Remove(back)
		delete(c.m, back.Value.(*entry).key)
		c.evictions++
	}
}

// Get returns the cached plan for src→dst, if any.
func (c *Cache) Get(src, dst *model.Graph) (*metaop.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookup(c.keyFor(src, dst))
}

// Put stores a plan for src→dst.
func (c *Cache) Put(src, dst *model.Graph, p *metaop.Plan) {
	c.mu.Lock()
	c.insert(c.keyFor(src, dst), p)
	c.mu.Unlock()
}

// GetOrPlan returns the cached plan or computes and caches one with pl.
// Concurrent calls for the same pair compute the plan exactly once: the
// first caller plans, the rest wait for its result (singleflight).
func (c *Cache) GetOrPlan(pl *Planner, src, dst *model.Graph) *metaop.Plan {
	c.mu.Lock()
	k := c.keyFor(src, dst)
	if p, ok := c.lookup(k); ok {
		c.mu.Unlock()
		return p
	}
	if f, ok := c.flights[k]; ok {
		c.deduped++
		c.mu.Unlock()
		<-f.done
		return f.plan
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	t0 := time.Now() //optimus:allow wallclock — telemetry: measures real planning cost, never enters simulated time
	p := pl.Plan(src, dst)
	took := time.Since(t0) //optimus:allow wallclock — telemetry: pairs with the time.Now above

	c.mu.Lock()
	c.insert(k, p)
	delete(c.flights, k)
	c.planned++
	c.planTimes.Observe(took)
	c.mu.Unlock()

	f.plan = p
	close(f.done)
	return p
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns cache hit and miss counts.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters is a point-in-time snapshot of the cache's bookkeeping.
type Counters struct {
	// Hits/Misses count lookups (Get and the read side of GetOrPlan).
	Hits, Misses int
	// Planned counts plans computed through GetOrPlan; Deduped counts
	// callers that waited on another goroutine's in-flight computation
	// (singleflight). Planned+Deduped+Hits covers every GetOrPlan call.
	Planned, Deduped int
	// Evictions counts plans dropped by the LRU bound; Size and Limit
	// describe the current occupancy (Limit 0 = unbounded).
	Evictions, Size, Limit int
}

// Counters returns the cache's counter snapshot.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits: c.hits, Misses: c.misses,
		Planned: c.planned, Deduped: c.deduped,
		Evictions: c.evictions, Size: len(c.m), Limit: c.limit,
	}
}

// PlanTimeStats is a snapshot of the per-pair planning-time telemetry.
type PlanTimeStats struct {
	// Count is the exact number of plans computed through GetOrPlan; Total
	// and Max are the exact sum and maximum of their planning durations.
	Count      int
	Total, Max time.Duration
	// P50/P95/P99 are streaming-digest percentiles (nearest-rank semantics,
	// ≤3.1% relative bucket error, P100-equivalent clamped to the exact max).
	P50, P95, P99 time.Duration
}

// PlanTimes summarizes the per-pair planning-time telemetry recorded by
// GetOrPlan. Percentiles come from a streaming log-linear digest, so this is
// O(1) in the number of plans: no samples are retained or sorted.
func (c *Cache) PlanTimes() PlanTimeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanTimeStats{
		Count: c.planned,
		Total: c.planTimes.Total(),
		Max:   c.planTimes.Max(),
		P50:   c.planTimes.Percentile(50),
		P95:   c.planTimes.Percentile(95),
		P99:   c.planTimes.Percentile(99),
	}
}
