package planner

import (
	"repro/internal/cost"
	"repro/internal/model"
)

// groupMapping implements the efficient group-based transformation algorithm
// of §4.4 Module 2⁺ in O(n+m):
//
//  1. group the operations of both models by type;
//  2. within each type, match operations sequentially one by one in
//     topological order (per the observation that operation shapes grow
//     monotonically with depth, sequential matching of weighted ops is
//     near-optimal, and weight-free ops can be matched arbitrarily);
//  3. unmatched source ops are reduced, unmatched destination ops added.
func groupMapping(est *cost.Estimator, src, dst *model.Graph) Mapping {
	srcOrder := topoOrder(src)
	dstOrder := topoOrder(dst)

	srcGroups := make(map[model.OpType][]int)
	for _, id := range srcOrder {
		t := src.Op(id).Type
		srcGroups[t] = append(srcGroups[t], id)
	}
	dstGroups := make(map[model.OpType][]int)
	for _, id := range dstOrder {
		t := dst.Op(id).Type
		dstGroups[t] = append(dstGroups[t], id)
	}

	mp := Mapping{SrcToDst: make([]int, src.NumOps())}
	for i := range mp.SrcToDst {
		mp.SrcToDst[i] = -1
	}
	matched := make([]bool, dst.NumOps())
	for t, srcIDs := range srcGroups {
		matchGroup(est, src, dst, srcIDs, dstGroups[t], mp.SrcToDst, matched)
	}
	for j := 0; j < dst.NumOps(); j++ {
		if !matched[j] {
			mp.Added = append(mp.Added, j)
		}
	}
	return mp
}

// matchKey buckets operations within a type group. Identical keys mean a
// substitution needs no Reshape (and, when weights also coincide, no work at
// all), so the matcher pairs those first.
type matchKey struct {
	shape   model.Shape
	weights uint64
}

// matchGroup pairs source and destination operations of one type in three
// linear passes: (1) identical shape+weights (zero-cost matches — shared
// pre-trained tensors, e.g. the BERT base under two downstream heads);
// (2) identical shape (Replace only); (3) remaining ops sequentially in
// topological order (Reshape), exploiting the monotone-shape observation.
func matchGroup(est *cost.Estimator, src, dst *model.Graph, srcIDs, dstIDs []int, srcToDst []int, matched []bool) {
	pair := func(i, j int) {
		srcToDst[i] = j
		matched[j] = true
	}
	srcLeft := append([]int(nil), srcIDs...)
	dstLeft := append([]int(nil), dstIDs...)

	for pass := 0; pass < 2; pass++ {
		buckets := make(map[matchKey][]int, len(srcLeft))
		for _, i := range srcLeft {
			k := keyOf(src.Op(i), pass)
			buckets[k] = append(buckets[k], i)
		}
		var nextSrc, nextDst []int
		usedSrc := make(map[int]bool)
		for _, j := range dstLeft {
			k := keyOf(dst.Op(j), pass)
			if cands := buckets[k]; len(cands) > 0 {
				i := cands[0]
				buckets[k] = cands[1:]
				usedSrc[i] = true
				pair(i, j)
			} else {
				nextDst = append(nextDst, j)
			}
		}
		for _, i := range srcLeft {
			if !usedSrc[i] {
				nextSrc = append(nextSrc, i)
			}
		}
		srcLeft, dstLeft = nextSrc, nextDst
	}
	// Final pass: remaining ops sequentially in topological order, skipping
	// pairs the profile rules un-reshapeable (extreme size ratios); those
	// destinations fall through to Add and the sources to Reduce.
	prof := est.Profile()
	si := 0
	for _, j := range dstLeft {
		for si < len(srcLeft) && !prof.Reshapeable(src.Op(srcLeft[si]), dst.Op(j)) {
			si++
		}
		if si == len(srcLeft) {
			break
		}
		pair(srcLeft[si], j)
		si++
	}
}

func keyOf(op *model.Operation, pass int) matchKey {
	k := matchKey{shape: op.Shape}
	if pass == 0 {
		k.weights = op.WeightsID
	}
	return k
}

// topoOrder returns a topological order, falling back to ID order if the
// graph is (unexpectedly) cyclic; planners must not fail on zoo output,
// which is always validated acyclic.
func topoOrder(g *model.Graph) []int {
	order, err := g.TopoSort()
	if err != nil {
		order = make([]int, g.NumOps())
		for i := range order {
			order[i] = i
		}
	}
	return order
}
