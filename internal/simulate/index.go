package simulate

import "time"

// This file implements the per-node routing index: incrementally-maintained
// counters that answer route()'s questions — "any warm idle container for
// fn?", "any repurposable idle container of another function?", "any free
// capacity?", "how many containers are busy?" — in O(1) per node instead of
// rescanning every container per request.
//
// # Invariants (checked against the scan router by Config.CrossCheckRouting)
//
// After expire(now) has run, for every indexed node:
//
//	busy            == #{c : c.BusyUntil > now}
//	busyMB          == Σ c.MemMB over busy containers
//	warm[ord(f)]    == #{c : c.Fn == f, not busy}
//	mature[ord(f)]  == #{c : c.Fn == f, not busy, now-c.LastDone ≥ minIdle}
//	matureTotal     == Σ_f mature[ord(f)]
//
// using the *current* c.LastDone field — which is deliberately stale between
// a container's BusyUntil passing and its completion event running, exactly
// like the scans: a request arriving at t == BusyUntil observes the container
// idle with the previous LastDone, because same-timestamp arrivals order
// before engine events.
//
// # Laziness
//
// Time-driven transitions (busy→idle at BusyUntil, young-idle→mature-idle at
// LastDone+minIdle) have no engine event of their own, so the index keeps
// per-node timers and drains due entries in expire(now) before any read. A
// timer is applied only if it still describes the container (state + field
// equality below); state changes invalidate stale timers for free, with no
// generation counters.
//
// Timers live in two structures chosen by their arrival order:
//
//   - busy-end timers go in a min-heap: BusyUntil values are not monotone in
//     serve order (a long request served early outlives a short one served
//     later), but the heap stays small — at most one live entry per busy
//     container;
//   - maturation timers go in a FIFO ring: every push happens at the current
//     clock T with fire time T+minIdle, so the queue is already sorted. This
//     matters — stale maturation timers accumulate for a full keep-alive
//     period (≈ request rate × minIdle entries), and heap ops over that
//     backlog dominated the indexed replay's profile before the split.
type nodeIndex struct {
	minIdle time.Duration

	busy   int
	busyMB int
	// warm counts idle containers per current function; mature counts the
	// subset whose idle age reached minIdle (repurposable, §4.2). Both are
	// dense slices keyed by the simulator-scoped function ordinal (ords) —
	// the routing hot path reads them per candidate node per request, and
	// pointer-keyed map lookups there were a top profile entry. Each
	// container caches its registration ordinal in idxOrd, so transitions
	// touch the ords map only when a container is (re)registered.
	warm        []int32
	mature      []int32
	matureTotal int
	ords        map[*Function]int32 // shared, owned by the Simulator

	timers  timerHeap  // busy-end timers only
	matureQ matureRing // maturation timers, monotone by fire time

	// nextEvict is a lower bound on the earliest time any resident container
	// can reach the keep-alive horizon; EvictExpired skips its scan before
	// then. evictSet marks the bound as computed.
	nextEvict time.Duration
	evictSet  bool
}

// Container index states (Container.idxState).
const (
	idxNone uint8 = iota // not indexed (index disabled, or removed)
	idxBusy
	idxYoung  // idle, idle age < minIdle
	idxMature // idle, idle age ≥ minIdle
)

// idxTimer is one pending transition: a busy-end timer (fires when the
// container's BusyUntil passes; valid while it is idxBusy with that exact
// BusyUntil) or a maturation timer (fires when an idle container's age
// reaches minIdle; valid while it is idxYoung with LastDone+minIdle == at).
type idxTimer struct {
	at time.Duration
	c  *Container
}

// timerHeap is a hand-rolled min-heap by `at` (same-time timers commute:
// they concern distinct container states, and stale entries are discarded by
// the validity checks regardless of order).
type timerHeap []idxTimer

func (h *timerHeap) push(t idxTimer) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].at <= (*h)[i].at {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *timerHeap) pop() idxTimer {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = idxTimer{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l].at < old[small].at {
			small = l
		}
		if r < n && old[r].at < old[small].at {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// matureRing is a FIFO of maturation timers. Entries are pushed with
// monotonically non-decreasing fire times (current clock + minIdle), so the
// head is always the earliest — push and pop are O(1) with no sifting.
type matureRing struct {
	buf        []idxTimer
	head, tail int // buf[head:tail) in ring order; len(buf) is a power of two
}

func (r *matureRing) len() int { return r.tail - r.head }

func (r *matureRing) push(t idxTimer) {
	if r.tail-r.head == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&(len(r.buf)-1)] = t
	r.tail++
}

func (r *matureRing) peek() *idxTimer { return &r.buf[r.head&(len(r.buf)-1)] }

func (r *matureRing) pop() idxTimer {
	i := r.head & (len(r.buf) - 1)
	t := r.buf[i]
	r.buf[i] = idxTimer{}
	r.head++
	return t
}

func (r *matureRing) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 64
	}
	buf := make([]idxTimer, n)
	for i, j := r.head, 0; i < r.tail; i, j = i+1, j+1 {
		buf[j] = r.buf[i&(len(r.buf)-1)]
	}
	r.tail -= r.head
	r.head = 0
	r.buf = buf
}

func (r *matureRing) reset() {
	clear(r.buf)
	r.head, r.tail = 0, 0
}

func newNodeIndex(minIdle time.Duration, ords map[*Function]int32) *nodeIndex {
	ix := &nodeIndex{minIdle: minIdle, ords: ords}
	ix.ensure(int32(len(ords)) - 1)
	return ix
}

// ordOf returns fn's counter slot, assigning the next free ordinal on first
// contact (the ords table is shared with the owning simulator's fnRuntimes).
func (ix *nodeIndex) ordOf(fn *Function) int32 {
	ord, ok := ix.ords[fn]
	if !ok {
		ord = int32(len(ix.ords))
		ix.ords[fn] = ord
	}
	ix.ensure(ord)
	return ord
}

// ensure grows the counter slices to cover ordinal `ord`.
func (ix *nodeIndex) ensure(ord int32) {
	for int(ord) >= len(ix.warm) {
		ix.warm = append(ix.warm, 0)
		ix.mature = append(ix.mature, 0)
	}
}

// warmAt and matureAt are bounds-guarded reads for the routing hot path: a
// function that never touched this node may carry an ordinal past the slices'
// current length, which simply means a zero count.
func (ix *nodeIndex) warmAt(ord int32) int32 {
	if int(ord) < len(ix.warm) {
		return ix.warm[ord]
	}
	return 0
}

func (ix *nodeIndex) matureAt(ord int32) int32 {
	if int(ord) < len(ix.mature) {
		return ix.mature[ord]
	}
	return 0
}

// expire drains due timers, moving containers busy→idle and young→mature so
// every counter reflects time `now`. Must run before any index read.
func (ix *nodeIndex) expire(now time.Duration) {
	for len(ix.timers) > 0 && ix.timers[0].at <= now {
		t := ix.timers.pop()
		c := t.c
		if c.idxState != idxBusy || c.BusyUntil != t.at {
			continue // container re-served, removed, or crashed
		}
		ix.busy--
		ix.busyMB -= c.MemMB
		ix.warm[c.idxOrd]++
		// Maturity is judged from the current LastDone — stale until the
		// completion event runs, matching what a same-timestamp scan sees.
		if now-c.LastDone >= ix.minIdle {
			c.idxState = idxMature
			ix.mature[c.idxOrd]++
			ix.matureTotal++
		} else {
			// No timer push needed: the add/complete that wrote the current
			// LastDone pushed a ring timer at LastDone+minIdle, and that timer
			// cannot have been popped yet (its fire time is still ahead of now).
			c.idxState = idxYoung
		}
	}
	for ix.matureQ.len() > 0 && ix.matureQ.peek().at <= now {
		t := ix.matureQ.pop()
		c := t.c
		if c.idxState != idxYoung || c.LastDone+ix.minIdle != t.at {
			continue // busy, removed, or LastDone rewritten since scheduling
		}
		c.idxState = idxMature
		ix.mature[c.idxOrd]++
		ix.matureTotal++
	}
}

// add registers a fresh idle container created at `now` (LastDone == now).
func (ix *nodeIndex) add(c *Container, now time.Duration) {
	c.idxState = idxYoung
	c.idxOrd = ix.ordOf(c.Fn)
	ix.warm[c.idxOrd]++
	ix.matureQ.push(idxTimer{at: now + ix.minIdle, c: c})
}

// remove deregisters a container in whatever state it currently is; pending
// timers for it die on their validity checks.
func (ix *nodeIndex) remove(c *Container) {
	switch c.idxState {
	case idxBusy:
		ix.busy--
		ix.busyMB -= c.MemMB
	case idxYoung:
		ix.warm[c.idxOrd]--
	case idxMature:
		ix.warm[c.idxOrd]--
		ix.mature[c.idxOrd]--
		ix.matureTotal--
	}
	c.idxState = idxNone
}

// startService moves an idle container to busy. The caller has already
// reassigned c.Fn and set c.BusyUntil; newOrd is the serving function's
// ordinal, which becomes the container's registration when it next idles
// (the decrements below use the ordinal it was idle under).
func (ix *nodeIndex) startService(c *Container, newOrd int32) {
	switch c.idxState {
	case idxYoung:
		ix.warm[c.idxOrd]--
	case idxMature:
		ix.warm[c.idxOrd]--
		ix.mature[c.idxOrd]--
		ix.matureTotal--
	default:
		//optimus:allow panicpath — cross-check oracle: index bookkeeping diverged from container state
		panic("simulate: routing index served a container it did not hold idle")
	}
	ix.ensure(newOrd)
	c.idxOrd = newOrd
	c.idxState = idxBusy
	ix.busy++
	ix.busyMB += c.MemMB
	ix.timers.push(idxTimer{at: c.BusyUntil, c: c})
}

// noteComplete runs after the completion event rewrote c.LastDone to `now`:
// a container the busy-end timer promoted to mature via the stale LastDone
// demotes back to young, and in every still-indexed state a maturation timer
// keyed to the fresh LastDone is scheduled (any timer keyed to the stale
// value fails its equality check). The idxBusy push covers both the normal
// case — the busy-end timer for this service period has not been drained yet
// — and boundary reuse, where the container is already busy again; either
// way the timer's validity check sorts it out at fire time. A container
// evicted at the busy/idle boundary is idxNone and left alone.
func (ix *nodeIndex) noteComplete(c *Container, now time.Duration) {
	switch c.idxState {
	case idxMature:
		c.idxState = idxYoung
		ix.mature[c.idxOrd]--
		ix.matureTotal--
	case idxNone:
		return
	}
	ix.matureQ.push(idxTimer{at: now + ix.minIdle, c: c})
}

// reset empties the index after a node outage wiped its containers.
func (ix *nodeIndex) reset() {
	ix.busy, ix.busyMB, ix.matureTotal = 0, 0, 0
	clear(ix.warm)
	clear(ix.mature)
	ix.timers = ix.timers[:0]
	ix.matureQ.reset()
	ix.evictSet = false
}

// expireIndex brings the node's index (if any) up to `now`.
func (n *Node) expireIndex(now time.Duration) {
	if n.idx != nil {
		n.idx.expire(now)
	}
}

// noteStartService records an idle→busy transition in the node's index.
func (n *Node) noteStartService(c *Container, newOrd int32) {
	if n.idx != nil {
		n.idx.startService(c, newOrd)
	}
}

// noteComplete records a completion's LastDone rewrite in the node's index.
func (n *Node) noteComplete(c *Container, now time.Duration) {
	if n.idx != nil {
		n.idx.noteComplete(c, now)
	}
}
