// Package directiveunused holds a directive that suppresses nothing: the
// directive itself must be reported as unused.
package directiveunused

//optimus:allow globalrand — fixture: stale suppression, the violation was fixed
func clean(seed int64) int {
	return int(seed % 7)
}
