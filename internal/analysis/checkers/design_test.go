package checkers

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDesignDocMatchesRegistry keeps the checker table in DESIGN.md's
// "Determinism invariants & static enforcement" section in lockstep with
// the registry: adding a checker without documenting its invariant (or
// documenting one that does not exist) fails here.
func TestDesignDocMatchesRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	const header = "## Determinism invariants & static enforcement"
	_, rest, found := strings.Cut(string(raw), header)
	if !found {
		t.Fatalf("DESIGN.md is missing the %q section", header)
	}
	if next := strings.Index(rest, "\n## "); next >= 0 {
		rest = rest[:next]
	}
	rowRE := regexp.MustCompile("(?m)^\\|\\s*`([a-z]+)`\\s*\\|")
	var documented []string
	for _, m := range rowRE.FindAllStringSubmatch(rest, -1) {
		documented = append(documented, m[1])
	}

	var registered []string
	for _, c := range All() {
		registered = append(registered, c.Name())
	}
	if strings.Join(documented, ",") != strings.Join(registered, ",") {
		t.Errorf("DESIGN.md documents %v but the registry holds %v;\nupdate the table in %q or checkers.All to match",
			documented, registered, header)
	}
}
