package planner

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/metaop"
	"repro/internal/model"
)

// benchPairs builds n distinct (src, dst) pairs of small chain models. Widths
// vary so every pair hashes to a distinct cache key (and so the keys spread
// over the shards).
func benchPairs(n int) [][2]*model.Graph {
	pairs := make([][2]*model.Graph, n)
	for i := range pairs {
		w := 4 + i%8
		src := chain(fmt.Sprintf("src-%d", i),
			convOp("c1", 3, w, w), reluOp("r1", w), convOp("c2", 3, w, w+1))
		dst := chain(fmt.Sprintf("dst-%d", i),
			convOp("c1", 5, w, w), reluOp("r1", w), convOp("c2", 3, w, w+2))
		pairs[i] = [2]*model.Graph{src, dst}
	}
	return pairs
}

// BenchmarkCacheContention measures the hot read path (GetOrPlan on a warm
// cache) under parallel load at both shard counts: shards=1 reproduces the
// pre-sharding single-mutex cache, shards=16 is the current default. The
// 16-goroutine before/after contrast is the sharding-change contention
// proof; on a single-core runner the ns/op gap narrows (goroutines cannot
// truly overlap) but the allocs/op equality and the dedup semantics still
// hold. Reference numbers from a 1-core Xeon @ 2.10GHz at -benchtime=2s:
//
//	shards=1/goroutines=16    90.91 ns/op    0 B/op    0 allocs/op
//	shards=16/goroutines=16   76.26 ns/op    0 B/op    0 allocs/op
//
// Even without true parallelism the sharded cache is ~16% faster (shorter
// critical sections, less handoff); on multicore the gap widens with core
// count since shards=1 serializes every probe on one mutex.
func BenchmarkCacheContention(b *testing.B) {
	pl := New(exact(), AlgoGroup)
	pairs := benchPairs(64)
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d/goroutines=16", shards), func(b *testing.B) {
			c := NewCacheSharded(0, shards)
			for _, pr := range pairs {
				c.GetOrPlan(pl, pr[0], pr[1]) // warm: the loop below only reads
			}
			b.SetParallelism((16 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					pr := pairs[i%len(pairs)]
					i++
					if c.GetOrPlan(pl, pr[0], pr[1]) == nil {
						b.Fatal("warm cache returned nil plan")
					}
				}
			})
		})
	}
}

// TestCacheShardedSemantics: sharding must not change observable cache
// behavior — every pair resolves to one plan, counters add up across shards,
// and the same pair always lands on the same shard (hit the second time).
func TestCacheShardedSemantics(t *testing.T) {
	pl := New(exact(), AlgoGroup)
	pairs := benchPairs(40)
	c := NewCache()
	if c.Shards() != DefaultShards {
		t.Fatalf("default cache has %d shards, want %d", c.Shards(), DefaultShards)
	}
	for _, pr := range pairs {
		first := c.GetOrPlan(pl, pr[0], pr[1])
		second := c.GetOrPlan(pl, pr[0], pr[1])
		if first == nil || first != second {
			t.Fatal("re-lookup did not hit the cached plan")
		}
	}
	ct := c.Counters()
	if ct.Planned != len(pairs) || ct.Hits != len(pairs) || ct.Size != len(pairs) {
		t.Fatalf("counters planned=%d hits=%d size=%d, want all %d",
			ct.Planned, ct.Hits, ct.Size, len(pairs))
	}
	if got := c.PlanTimes().Count; got != len(pairs) {
		t.Fatalf("PlanTimes.Count=%d, want %d", got, len(pairs))
	}
}

// TestCacheLoaderOneHop: a loader-satisfied miss is counted Remote, not
// Planned; GetOrPlanLocal never consults the loader; and the loader fires at
// most once per pair (singleflight covers the remote pull too).
func TestCacheLoaderOneHop(t *testing.T) {
	pl := New(exact(), AlgoGroup)
	pairs := benchPairs(8)

	owner := NewCache()
	for _, pr := range pairs {
		owner.GetOrPlan(pl, pr[0], pr[1])
	}

	peer := NewCache()
	var loaderCalls sync.Map
	peer.SetLoader(func(src, dst *model.Graph) (*metaop.Plan, bool) {
		n, _ := loaderCalls.LoadOrStore(src.Name, new(int))
		*(n.(*int))++
		return owner.Get(src, dst)
	})

	var wg sync.WaitGroup
	got := make([]*metaop.Plan, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pr := pairs[i%len(pairs)]
			got[i] = peer.GetOrPlan(pl, pr[0], pr[1])
		}(i)
	}
	wg.Wait()
	peer.FlightsQuiesce()

	for i, p := range got {
		pr := pairs[i%len(pairs)]
		want, _ := owner.Get(pr[0], pr[1])
		if p != want {
			t.Fatalf("call %d did not receive the owner's plan", i)
		}
	}
	ct := peer.Counters()
	if ct.Planned != 0 {
		t.Fatalf("peer planned %d pairs locally despite a loader that always hits", ct.Planned)
	}
	if ct.Remote != len(pairs) {
		t.Fatalf("peer pulled %d pairs, want %d", ct.Remote, len(pairs))
	}
	loaderCalls.Range(func(_, v any) bool {
		if *(v.(*int)) != 1 {
			t.Fatalf("loader fired %d times for one pair, want 1 (singleflight)", *(v.(*int)))
		}
		return true
	})

	// GetOrPlanLocal must bypass the loader: a fresh peer plans locally.
	local := NewCache()
	local.SetLoader(func(src, dst *model.Graph) (*metaop.Plan, bool) {
		t.Error("GetOrPlanLocal consulted the loader")
		return nil, false
	})
	if local.GetOrPlanLocal(pl, pairs[0][0], pairs[0][1]) == nil {
		t.Fatal("GetOrPlanLocal returned nil")
	}
	if ct := local.Counters(); ct.Planned != 1 || ct.Remote != 0 {
		t.Fatalf("local plan counted planned=%d remote=%d, want 1/0", ct.Planned, ct.Remote)
	}
}
