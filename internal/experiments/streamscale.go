package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// StreamScaleBench is the constant-memory streaming section of the scale
// benchmark: the same synthetic cluster fed straight from lazy per-function
// generators (no trace slice, no record retention), at a request count an
// order of magnitude past what the materialized paths replay.
//
// Three properties are checked alongside the timings:
//
//   - fidelity: a streaming replay's summary is byte-identical to the
//     summary derived from a materialized replay's records at the baseline
//     size (same seed, same rates);
//   - constant memory: peak heap at the full streaming size stays within
//     1.5× of peak heap at the ~10×-smaller baseline size;
//   - windowed parallelism: on a placement whose bridge functions connect
//     every node group (so RunSharded must refuse it), time-windowed
//     optimistic replay equals the serial streaming engine exactly.
type StreamScaleBench struct {
	// Requests is the full streaming replay size; BaseRequests the smaller
	// baseline the fidelity and peak-memory comparisons run at.
	Requests     int `json:"stream_requests"`
	BaseRequests int `json:"stream_base_requests"`

	WallMS       float64 `json:"stream_ms"`
	AllocsPerReq float64 `json:"stream_allocs_per_req"`

	// PeakHeapBaseMB and PeakHeapMB sample runtime heap use (HeapAlloc,
	// ~10 ms cadence) during the baseline and full streaming replays;
	// PeakRatio = full/baseline — near 1 when memory is trace-length-free.
	PeakHeapBaseMB float64 `json:"stream_peak_heap_base_mb"`
	PeakHeapMB     float64 `json:"stream_peak_heap_mb"`
	PeakRatio      float64 `json:"stream_peak_ratio"`

	// MatchesMaterialized: streaming summary == summary of the materialized
	// replay's records, at BaseRequests with the same seed.
	MatchesMaterialized bool `json:"stream_matches_materialized"`

	// Windowed replay on the bridge-connected placement (not shardable).
	WindowedRequests      int     `json:"windowed_requests"`
	WindowedMS            float64 `json:"windowed_ms"`
	WindowedMatchesSerial bool    `json:"windowed_matches_serial"`
	Windows               int     `json:"windows"`
	ParallelWindows       int     `json:"parallel_windows"`
	ConflictWindows       int     `json:"conflict_windows"`
	MaxGroups             int     `json:"max_groups"`
}

// streamSpec stretches the baseline cluster's horizon so the streaming
// replay covers `requests` arrivals at the same offered load as the
// base-size run: constant memory means longer traces, not hotter clusters —
// scaling the rate instead would saturate the fixed cluster and grow the
// pending-request queue (real simulated backlog) linearly with the trace
// length. The extra 0.5% of horizon covers Poisson noise so the realized
// arrival count clears the nominal target.
func streamSpec(o Options, requests, base, groups int) scaleSpec {
	spec := scaleClusterSpec(o, base, groups)
	spec.horizon = time.Duration(float64(spec.horizon) * float64(requests) / float64(base) * 1.005)
	return spec
}

// bridgeSpec adds one low-rate bridge function between each pair of adjacent
// node groups, connecting the whole placement into a single component:
// RunSharded refuses it, while windowed replay parallelizes every window the
// bridges sit out.
func bridgeSpec(spec scaleSpec, groups int) scaleSpec {
	const nodesPerGroup = 8
	bridged := scaleSpec{
		cfg:     spec.cfg,
		fns:     append([]*simulate.Function(nil), spec.fns...),
		rates:   make(map[string]float64, len(spec.rates)+groups),
		horizon: spec.horizon,
	}
	placement := make(map[string][]int, len(spec.cfg.Placement)+groups)
	for name, nodes := range spec.cfg.Placement {
		placement[name] = nodes
	}
	for name, r := range spec.rates {
		bridged.rates[name] = r
	}
	for g := 0; g < groups-1; g++ {
		name := fmt.Sprintf("bridge-%02d", g)
		bridged.fns = append(bridged.fns, &simulate.Function{Name: name, Model: spec.fns[g%len(spec.fns)].Model})
		placement[name] = []int{g*nodesPerGroup + nodesPerGroup - 1, (g + 1) * nodesPerGroup}
		// ~2 expected arrivals per bridge over the horizon: rare enough that
		// most windows parallelize, frequent enough that some conflict.
		bridged.rates[name] = 2 / spec.horizon.Seconds()
	}
	bridged.cfg.Placement = placement
	return bridged
}

// peakHeapDuring runs fn while sampling HeapAlloc on a ~10 ms cadence,
// returning the peak in MB. The heap is GC'd down before the run so earlier
// benchmarks' garbage doesn't count against fn.
func peakHeapDuring(fn func()) float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	peak := int64(ms.HeapAlloc)
	var peakAtomic atomic.Int64
	peakAtomic.Store(peak)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if h := int64(s.HeapAlloc); h > peakAtomic.Load() {
					peakAtomic.Store(h)
				}
			}
		}
	}()
	fn()
	close(done)
	wg.Wait()
	runtime.ReadMemStats(&ms)
	if h := int64(ms.HeapAlloc); h > peakAtomic.Load() {
		peakAtomic.Store(h)
	}
	return float64(peakAtomic.Load()) / (1 << 20)
}

// streamRun replays the spec's generators through the streaming engine,
// returning the summary, wall-clock ms, and allocations per request.
func streamRun(spec scaleSpec, seed int64) (*metrics.Summary, float64, float64, int) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	sum, err := simulate.New(spec.cfg, spec.fns).RunStream(
		workload.StreamPoissonRates(spec.rates, spec.horizon, seed))
	if err != nil {
		panic(err)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	n := sum.Count()
	allocs := float64(after.Mallocs-before.Mallocs) / float64(n)
	return sum, msF(wall), allocs, n
}

// StreamScale runs the streaming section of the scale benchmark. requests
// <= 0 defaults to ten million (500k in quick mode); the fidelity and
// peak-memory baseline runs at a tenth of that; groups and windows <= 0
// default to 8 and 32. Unlike Scale it leaves the GC at its default: the
// point is the engine's true memory profile, not benchmark throughput.
func StreamScale(o Options, requests, groups, windows, workers int) StreamScaleBench {
	o = o.withDefaults()
	if requests <= 0 {
		requests = 10_000_000
		if o.Quick {
			requests = 500_000
		}
	}
	if groups <= 0 {
		groups = 8
	}
	if windows <= 0 {
		windows = 32
	}
	if workers <= 0 {
		workers = groups
	}
	base := requests / 10
	res := StreamScaleBench{Requests: requests, BaseRequests: base}

	// Fidelity at the baseline size: materialized indexed replay vs the
	// generator-fed streaming replay, summaries compared with ==.
	baseFx := scaleCluster(o, base, groups)
	col, err := simulate.New(baseFx.cfg, baseFx.fns).Run(baseFx.trace)
	if err != nil {
		panic(err)
	}
	want := *metrics.SummaryOf(col)
	col = nil
	baseSpec := scaleClusterSpec(o, base, groups)
	var baseSum *metrics.Summary
	res.PeakHeapBaseMB = peakHeapDuring(func() {
		baseSum, _, _, _ = streamRun(baseSpec, o.Seed)
	})
	res.MatchesMaterialized = *baseSum == want

	// The full-size streaming replay: the baseline's offered load over a
	// proportionally longer horizon — constant memory regardless of length.
	spec := streamSpec(o, requests, base, groups)
	res.PeakHeapMB = peakHeapDuring(func() {
		_, res.WallMS, res.AllocsPerReq, res.Requests = streamRun(spec, o.Seed)
	})
	if res.PeakHeapBaseMB > 0 {
		res.PeakRatio = res.PeakHeapMB / res.PeakHeapBaseMB
	}

	// Windowed optimistic parallelism on the bridge-connected placement.
	wSpec := bridgeSpec(scaleClusterSpec(o, base, groups), groups)
	serial, err := simulate.New(wSpec.cfg, wSpec.fns).RunStream(
		workload.StreamPoissonRates(wSpec.rates, wSpec.horizon, o.Seed))
	if err != nil {
		panic(err)
	}
	t0 := time.Now()
	win, rep, err := simulate.RunWindowed(wSpec.cfg, wSpec.fns,
		workload.StreamPoissonRates(wSpec.rates, wSpec.horizon, o.Seed),
		wSpec.horizon, windows, workers)
	if err != nil {
		panic(err)
	}
	res.WindowedMS = msF(time.Since(t0))
	res.WindowedRequests = win.Count()
	res.WindowedMatchesSerial = rep.Windowed() && *win == *serial
	res.Windows = rep.Windows
	res.ParallelWindows = rep.ParallelWindows
	res.ConflictWindows = rep.ConflictWindows
	res.MaxGroups = rep.MaxGroups
	return res
}

// Render prints the streaming section digest.
func (r StreamScaleBench) Render() string {
	okStr := func(b bool) string {
		if b {
			return "ok"
		}
		return "MISMATCH"
	}
	return fmt.Sprintf(`  stream       %8.1f ms   %6.2f allocs/req   (%d requests, summary vs materialized %s)
  peak heap    %8.1f MB vs %.1f MB at %d requests (ratio %.2fx)
  windowed     %8.1f ms   (%d requests, %d/%d windows parallel, %d conflict-serial, max %d partitions, vs serial %s)`,
		r.WallMS, r.AllocsPerReq, r.Requests, okStr(r.MatchesMaterialized),
		r.PeakHeapMB, r.PeakHeapBaseMB, r.BaseRequests, r.PeakRatio,
		r.WindowedMS, r.WindowedRequests, r.ParallelWindows, r.Windows, r.ConflictWindows, r.MaxGroups,
		okStr(r.WindowedMatchesSerial))
}
