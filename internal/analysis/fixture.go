package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture harness needs; taking the
// interface keeps package testing out of the optimus-lint binary.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRE extracts the quoted message regexps of a // want comment.
var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// CheckFixture type-checks the fixture package in dir under the import
// path pkgPath (fixtures import only the standard library) and returns the
// findings of the checker plus the directive pipeline, sorted. It is the
// programmatic entry point for tests asserting exact finding sets.
func CheckFixture(checker Checker, dir, pkgPath string) ([]Finding, error) {
	findings, _, _, err := runFixture(checker, dir, pkgPath)
	return findings, err
}

// RunFixture type-checks the fixture package in dir under the import path
// pkgPath (fixtures import only the standard library), runs the checker and
// the directive pipeline over it, and compares the findings against the
// fixture's // want "regexp" comments: every want must be matched by a
// finding on its exact file:line, and every finding must be claimed by a
// want. pkgPath matters to package-scoped checkers (wallclock, panicpath),
// which decide applicability from the import path.
func RunFixture(tb TB, checker Checker, dir, pkgPath string) {
	tb.Helper()
	findings, fset, files, err := runFixture(checker, dir, pkgPath)
	if err != nil {
		tb.Fatalf("fixture %s: %v", dir, err)
	}
	matchWants(tb, fset, files, findings)
}

// RunModuleFixture loads a fixture mini-module (rootDir laid out like a real
// module, modPath its module path), runs the checker plus the directive
// pipeline over the packages matched by patterns, and compares findings
// against the // want comments of every matched file. It exists for
// interprocedural checkers whose findings only arise across package
// boundaries (timeprop's virtual-to-wallclock edges); single-package
// checkers should keep using RunFixture.
func RunModuleFixture(tb TB, checker Checker, rootDir, modPath string, patterns ...string) {
	tb.Helper()
	loader := NewLoader(rootDir, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		tb.Fatalf("module fixture %s: %v", rootDir, err)
	}
	graph := BuildCallGraph(loader.Packages())
	known := map[string]bool{checker.Name(): true}
	var findings []Finding
	var files []*ast.File
	for _, pkg := range pkgs {
		findings = append(findings, runPackage(pkg, graph, []Checker{checker}, known)...)
		files = append(files, pkg.Files...)
	}
	sortFindings(findings)
	matchWants(tb, loader.fset, files, findings)
}

// matchWants compares findings against the // want "regexp" comments in
// files: every want must be matched by a finding on its exact file:line, and
// every finding must be claimed by a want.
func matchWants(tb TB, fset *token.FileSet, files []*ast.File, findings []Finding) {
	tb.Helper()
	type want struct {
		pos token.Position
		re  *regexp.Regexp
	}
	var wants []*want
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := splitWantPatterns(m[1])
				if err != nil {
					tb.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						tb.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}

	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || f.Pos.Filename != w.pos.Filename || f.Pos.Line != w.pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			tb.Errorf("%s: no finding matching %q on this line", w.pos, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			tb.Errorf("unexpected finding: %s", f)
		}
	}
}

// runFixture loads and checks a fixture package, returning its findings.
// Fixtures share the process-wide FileSet and stdlib importer, so the
// standard library is type-checked once for the whole test run rather than
// once per fixture.
func runFixture(checker Checker, dir, pkgPath string) ([]Finding, *token.FileSet, []*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset, _ := sharedStd()
	pkg := &Package{Path: pkgPath, Dir: dir, Fset: fset, Src: make(map[string][]byte)}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, nil, nil, err
		}
		f, err := parser.ParseFile(fset, fname, src, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Src[fname] = src
	}
	if len(pkg.Files) == 0 {
		return nil, nil, nil, fmt.Errorf("no fixture files in %s", dir)
	}
	pkg.Info = NewInfo()
	conf := types.Config{Importer: fixtureImporter{}}
	pkg.Types, err = conf.Check(pkgPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking: %w", err)
	}
	graph := BuildCallGraph([]*Package{pkg})
	known := map[string]bool{checker.Name(): true}
	findings := runPackage(pkg, graph, []Checker{checker}, known)
	sortFindings(findings)
	return findings, fset, pkg.Files, nil
}

// fixtureImporter resolves fixture imports (standard library only) through
// the shared memoized source importer.
type fixtureImporter struct{}

func (fixtureImporter) Import(path string) (*types.Package, error) {
	return stdImport(path, "", 0)
}

// splitWantPatterns parses the payload of a want comment: one or more
// double-quoted (escapes honored) or backquoted regexps.
func splitWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want payload must be quoted regexps, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
