package analysis_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis"
)

// FuzzCallGraph hammers the call-graph builder with arbitrary Go sources:
// any program that parses and type-checks must produce a graph without
// panicking, the graph must be byte-deterministic across rebuilds, and
// every recorded edge must be structurally sound and re-resolvable — the
// callee a site records is exactly what StaticCallee resolves for its call
// expression.
func FuzzCallGraph(f *testing.F) {
	seeds := []string{
		// Plain calls, forward references, recursion.
		`package p
func a() { b(); a() }
func b() {}`,
		// Methods, pointer receivers, embedded promotion.
		`package p
import "sync"
type T struct{ sync.Mutex; n int }
func (t *T) get() int { t.Lock(); defer t.Unlock(); return t.n }
func use(t *T) int { return t.get() }`,
		// Function literals with go and defer.
		`package p
func spawn(ch chan int) {
	go func() { ch <- help() }()
	defer func() { help() }()
}
func help() int { return 1 }`,
		// Method values: the call site is dynamic, the binding is not an edge.
		`package p
type T int
func (t T) m() int { return int(t) }
func use(t T) int { f := t.m; return f() }`,
		// Method expressions.
		`package p
type T int
func (t T) m() int { return int(t) }
func use(t T) int { return T.m(t) }`,
		// Generic functions and instantiation.
		`package p
func id[V any](v V) V { return v }
func use() int { return id(3) + id[int](4) }`,
		// Interface method calls resolve to the interface method object.
		`package p
type runner interface{ run() }
func use(r runner) { r.run() }`,
		// Conversions must not register as calls.
		`package p
type celsius float64
func use(x float64) celsius { return celsius(x) + celsius(f(x)) }
func f(x float64) float64 { return x }`,
		// Mutual recursion through a literal.
		`package p
func even(n int) bool { if n == 0 { return true }; return func() bool { return odd(n - 1) }() }
func odd(n int) bool { if n == 0 { return false }; return even(n - 1) }`,
		// Shadowed builtins and locally shadowed functions.
		`package p
func len(s string) int { return 3 }
func use() int { f := len; return f("x") + len("y") }`,
		// Empty bodies and declarations without bodies don't break scanning.
		`package p
func a()
func b() { a() }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp, Error: func(error) {}}
		tpkg, err := conf.Check("fuzzpkg", fset, []*ast.File{file}, info)
		if err != nil {
			t.Skip()
		}
		pkg := &analysis.Package{
			Path:  "fuzzpkg",
			Fset:  fset,
			Files: []*ast.File{file},
			Types: tpkg,
			Info:  info,
			Src:   map[string][]byte{},
		}
		g := analysis.BuildCallGraph([]*analysis.Package{pkg})
		again := analysis.BuildCallGraph([]*analysis.Package{pkg})

		nodes, nodes2 := g.Nodes(), again.Nodes()
		if len(nodes) != len(nodes2) {
			t.Fatalf("rebuild changed node count: %d vs %d", len(nodes), len(nodes2))
		}
		for i := range nodes {
			if nodes[i].FullName() != nodes2[i].FullName() {
				t.Fatalf("rebuild changed node order at %d: %s vs %s",
					i, nodes[i].FullName(), nodes2[i].FullName())
			}
		}

		for _, n := range nodes {
			if n.Decl != nil && n.Info == nil {
				t.Fatalf("declared node %s has no type info", n.FullName())
			}
			if n.Decl == nil && len(n.Out) > 0 {
				t.Fatalf("external node %s has out-edges", n.FullName())
			}
			for _, site := range n.Out {
				if site.Caller != n {
					t.Fatalf("site in %s.Out has caller %s", n.FullName(), site.Caller.FullName())
				}
				if site.Callee == nil || site.Call == nil {
					t.Fatalf("site in %s.Out is structurally incomplete", n.FullName())
				}
				fn := analysis.StaticCallee(n.Info, site.Call)
				if fn == nil {
					t.Fatalf("%s: recorded edge whose call no longer resolves", n.FullName())
				}
				if g.Node(fn) != site.Callee {
					t.Fatalf("%s: edge callee %s mis-resolves to %s",
						n.FullName(), site.Callee.FullName(), fn.FullName())
				}
			}
			for _, site := range n.In {
				if site.Callee != n {
					t.Fatalf("site in %s.In has callee %s", n.FullName(), site.Callee.FullName())
				}
			}
		}
	})
}
