package planner

import (
	"sync"

	"repro/internal/metaop"
	"repro/internal/model"
)

// Cache implements the planning-strategy cache of §4.4 Module 3: plans are
// computed offline when models register and read back at transformation time,
// so the online path does no planning work. Keys are (source structure hash,
// source weights hash, destination structure hash, destination weights hash)
// — two models with identical structure but different weights transform
// differently (Replace steps), so weights participate in the key.
type Cache struct {
	mu sync.RWMutex
	m  map[cacheKey]*metaop.Plan
	// ids memoizes per-graph hash pairs. Graphs handed out by the zoo
	// registries are immutable by convention (containers hold clones), so
	// pointer-keyed memoization is safe and makes the online cache lookup
	// O(1) instead of re-hashing both graphs.
	ids map[*model.Graph]graphID

	hits, misses int
}

type graphID struct{ structure, weights uint64 }

type cacheKey struct {
	src, dst graphID
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{
		m:   make(map[cacheKey]*metaop.Plan),
		ids: make(map[*model.Graph]graphID),
	}
}

// idFor must be called with c.mu held.
func (c *Cache) idFor(g *model.Graph) graphID {
	if id, ok := c.ids[g]; ok {
		return id
	}
	id := graphID{structure: g.StructureHash(), weights: g.WeightsHash()}
	c.ids[g] = id
	return id
}

func (c *Cache) keyFor(src, dst *model.Graph) cacheKey {
	return cacheKey{src: c.idFor(src), dst: c.idFor(dst)}
}

// Get returns the cached plan for src→dst, if any.
func (c *Cache) Get(src, dst *model.Graph) (*metaop.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[c.keyFor(src, dst)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

// Put stores a plan for src→dst.
func (c *Cache) Put(src, dst *model.Graph, p *metaop.Plan) {
	c.mu.Lock()
	c.m[c.keyFor(src, dst)] = p
	c.mu.Unlock()
}

// GetOrPlan returns the cached plan or computes and caches one with pl.
func (c *Cache) GetOrPlan(pl *Planner, src, dst *model.Graph) *metaop.Plan {
	if p, ok := c.Get(src, dst); ok {
		return p
	}
	p := pl.Plan(src, dst)
	c.Put(src, dst, p)
	return p
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats returns cache hit and miss counts.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}
