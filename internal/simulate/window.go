package simulate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// This file implements time-windowed optimistic parallel replay: the trace
// streams through fixed time windows, and inside each window the arriving
// (and queued) functions' candidate node sets are partitioned by union-find.
// Functions in different partitions cannot observe each other's state within
// the window — routing, queueing, repurposing and completions all stay on a
// partition's own nodes — so the partitions replay concurrently on workers
// sharing the real cluster state with disjoint write sets. Unlike RunSharded
// this needs no globally disjoint placement: overlap only costs parallelism
// in the windows where the overlapping functions are simultaneously active,
// which are detected at the window boundary and replayed serially on the
// authoritative engine.
//
// Why a window partition is exact, not just race-free:
//
//   - A function active (arriving or queued) in partition P has all its
//     candidate nodes in P, so its routing reads, container mutations and
//     EWMA updates happen only under P's worker.
//   - A container always lives on a node in its current function's candidate
//     set, so a container of an active function is only reachable from its
//     own partition; containers of inactive functions are read (by the
//     repurposing eligibility test) but never written this window.
//   - Under the serial-fallback preconditions (no faults, no online
//     profiling, no fan-out, no health tracking) pending engine events are
//     all evComplete, which touch only their own node; events on nodes no
//     partition owns are deferred — each node still observes its events and
//     arrivals in timestamp order, which is the only order that matters.
//   - At equal timestamps arrivals fire before engine events within a
//     window, exactly as in Run/RunStream; events at or past the window
//     boundary stay pending so a later window's earlier arrivals cannot be
//     overtaken.
//
// Config.CrossCheckWindows keeps a second, fully serial simulator in
// lockstep and compares the per-window record multisets, panicking on the
// first divergence — the same oracle pattern as Config.CrossCheckRouting.

// WindowReport describes how RunWindowed executed.
type WindowReport struct {
	// Windows counts non-empty windows processed; ParallelWindows of them
	// split into 2+ partitions, ConflictWindows were replayed serially
	// because cross-partition placement conflicts merged everything active
	// into one group.
	Windows         int
	ParallelWindows int
	ConflictWindows int
	// MaxGroups is the largest per-window partition count observed.
	MaxGroups int
	// Workers bounds concurrently running partition workers.
	Workers int
	// SerialReason is empty when windowed replay ran; otherwise it names the
	// coupling that forced the whole run onto the serial streaming path.
	SerialReason string
	// TransformsVerified and TransformsFailed aggregate across workers.
	TransformsVerified int
	TransformsFailed   int
}

// Windowed reports whether the replay actually ran the windowed engine.
func (r WindowReport) Windowed() bool { return r.SerialReason == "" }

// windowArrival is one buffered in-window request, resolved once.
type windowArrival struct {
	at   time.Duration
	fr   *fnRuntime
	name string
}

// windowCorruptHook, when non-nil, runs after each parallel partition worker
// finishes its window, before results merge — a test-only seam that lets the
// oracle-divergence tests corrupt one partition's state and prove the
// cross-check fails loudly instead of silently agreeing.
var windowCorruptHook func(window, group int, w *Simulator)

// windowSerialReason names the coupling that forces RunWindowed onto the
// serial streaming path, or "" when windowed replay is sound. The couplings
// are exactly planShards': each makes request outcomes depend on global
// order, not just per-partition order.
func windowSerialReason(cfg Config, windows, workers int) string {
	switch {
	case cfg.Faults.Enabled():
		return "fault injection draws from one global random stream"
	case cfg.OnlineProfiling > 0:
		return "online profiling couples the cost estimator across all requests"
	case cfg.Fanout.Enabled:
		return "fan-out trees place replicas across all nodes"
	case cfg.Health.Enabled:
		return "health tracking couples the cluster latency baseline across all nodes"
	case windows < 2:
		return "fewer than two windows"
	case workers == 1:
		return "workers=1"
	case cfg.Nodes < 2:
		return "single node"
	}
	return ""
}

// forkWorker builds a partition worker: it shares the authoritative
// simulator's cluster state (nodes, function runtimes, ordinals, estimator,
// plan cache, supervision) and owns only its clock, event heap and
// collector. Safe only under the windowSerialReason preconditions, where the
// shared pieces are either immutable this window, mutex-protected and
// decision-neutral, or partition-local by the window-partition argument.
func (s *Simulator) forkWorker() *Simulator {
	return &Simulator{
		cfg:      s.cfg,
		env:      s.env,
		nodes:    s.nodes,
		fns:      s.fns,
		fnRt:     s.fnRt,
		ords:     s.ords,
		est:      s.est,
		idxOn:    s.idxOn,
		inj:      faults.New(s.cfg.Seed^0x5f3759df, s.cfg.Faults),
		watchdog: s.watchdog,
		breaker:  s.breaker,
		health:   s.health,
		backoff:  s.backoff,
		hedger:   s.hedger,
	}
}

// runWindow replays buffered arrivals merged with pending events, firing
// events strictly before limit (arrivals first at equal timestamps, like
// Run); final drains the event heap completely.
func (s *Simulator) runWindow(arr []windowArrival, limit time.Duration, final bool) {
	next := 0
	for next < len(arr) || len(s.events) > 0 {
		if next < len(arr) && (len(s.events) == 0 || arr[next].at <= s.events[0].at) {
			a := arr[next]
			next++
			s.clock = a.at
			s.arrive(a.fr, a.at)
			continue
		}
		if !final && s.events[0].at >= limit {
			return
		}
		s.step(s.events.pop())
	}
}

// recordLess is a total order over records (every field), giving the
// cross-check oracle a canonical multiset ordering.
func recordLess(a, b metrics.Record) bool {
	switch {
	case a.Start != b.Start:
		return a.Start < b.Start
	case a.Arrival != b.Arrival:
		return a.Arrival < b.Arrival
	case a.Function != b.Function:
		return a.Function < b.Function
	case a.End != b.End:
		return a.End < b.End
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Wait != b.Wait:
		return a.Wait < b.Wait
	case a.Init != b.Init:
		return a.Init < b.Init
	case a.Load != b.Load:
		return a.Load < b.Load
	case a.Compute != b.Compute:
		return a.Compute < b.Compute
	default:
		return a.Retries < b.Retries
	}
}

// checkWindowRecords compares a window's record multisets from the windowed
// engine and the serial oracle, panicking on the first divergence.
func checkWindowRecords(window int, got, want []metrics.Record) {
	fail := func(detail string) {
		//optimus:allow panicpath — cross-check oracle: windowed replay diverged from the serial engine
		panic(fmt.Sprintf("simulate: windowed replay divergence in window %d: %s", window, detail))
	}
	if len(got) != len(want) {
		fail(fmt.Sprintf("windowed produced %d records, serial oracle %d", len(got), len(want)))
	}
	g := append([]metrics.Record(nil), got...)
	w := append([]metrics.Record(nil), want...)
	sort.Slice(g, func(i, j int) bool { return recordLess(g[i], g[j]) })
	sort.Slice(w, func(i, j int) bool { return recordLess(w[i], w[j]) })
	for i := range g {
		if g[i] != w[i] {
			fail(fmt.Sprintf("record %d: windowed %+v, serial oracle %+v", i, g[i], w[i]))
		}
	}
}

// RunWindowed replays requests pulled lazily from src through `windows` time
// windows over the given horizon, speculating across partitions inside each
// window on up to `workers` goroutines (<= 0 means GOMAXPROCS) and replaying
// conflicted windows serially. Results are exactly the serial engine's: the
// returned summary equals RunStream's on the same source. When the
// configuration couples requests globally (see WindowReport.SerialReason)
// the whole run falls back to serial streaming replay.
func RunWindowed(cfg Config, fns []*Function, src workload.Cursor, duration time.Duration, windows, workers int) (*metrics.Summary, WindowReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dcfg := cfg.withDefaults()
	report := WindowReport{Workers: workers}
	if duration <= 0 {
		report.SerialReason = "no horizon"
	} else {
		report.SerialReason = windowSerialReason(dcfg, windows, workers)
	}
	if report.SerialReason != "" {
		sim := New(cfg, fns)
		sum, err := sim.RunStream(src)
		report.TransformsVerified = sim.TransformsVerified
		report.TransformsFailed = sim.TransformsFailed
		return sum, report, err
	}

	s := New(cfg, fns)
	if !s.cfg.RouteScan || s.cfg.CrossCheckRouting {
		s.enableIndex()
	}
	sum := &metrics.Summary{}
	crossCheck := s.cfg.CrossCheckWindows
	var oracle *Simulator
	if crossCheck {
		// The oracle replays the same windows on its own serial simulator;
		// both collectors retain records so per-window deltas can be
		// compared. Debug/test mode: it pays the serial run's full cost.
		oracle = New(cfg, fns)
		if !oracle.cfg.RouteScan || oracle.cfg.CrossCheckRouting {
			oracle.enableIndex()
		}
	} else {
		s.collector.StreamInto(sum)
	}

	pending, ok := src.Next()
	var last time.Duration
	var arr []windowArrival
	sLast, oLast := 0, 0 // collector high-water marks (cross-check mode)
	for wi := 0; wi < windows && ok; wi++ {
		final := wi == windows-1
		end := duration * time.Duration(wi+1) / time.Duration(windows)
		arr = arr[:0]
		for ok && (final || pending.At < end) {
			if pending.At < last {
				return nil, report, fmt.Errorf("simulate: stream out of order: %v after %v", pending.At, last)
			}
			last = pending.At
			fn, known := s.fns[pending.Function]
			if !known {
				return nil, report, fmt.Errorf("simulate: trace references unknown function %q", pending.Function)
			}
			arr = append(arr, windowArrival{at: pending.At, fr: s.rt(fn), name: pending.Function})
			pending, ok = src.Next()
		}
		if len(arr) == 0 {
			continue
		}
		report.Windows++

		groups, nodeGroup := windowPartition(s, arr)
		if groups > 1 {
			report.ParallelWindows++
			if groups > report.MaxGroups {
				report.MaxGroups = groups
			}
			s.runWindowParallel(arr, end, final, groups, nodeGroup, workers, wi, crossCheck, sum)
		} else {
			report.ConflictWindows++
			s.runWindow(arr, end, final)
		}

		if crossCheck {
			oArr := make([]windowArrival, len(arr))
			for i, a := range arr {
				oArr[i] = windowArrival{at: a.at, fr: oracle.rt(oracle.fns[a.name]), name: a.name}
			}
			oracle.runWindow(oArr, end, final)
			gotRecs := s.collector.Records()[sLast:]
			wantRecs := oracle.collector.Records()[oLast:]
			checkWindowRecords(wi, gotRecs, wantRecs)
			sLast = s.collector.Len()
			oLast = oracle.collector.Len()
		}
	}
	// Trailing completions past the last non-empty window (or past an early
	// cursor exhaustion) drain serially.
	s.runWindow(nil, 0, true)
	if crossCheck {
		oracle.runWindow(nil, 0, true)
		checkWindowRecords(windows, s.collector.Records()[sLast:], oracle.collector.Records()[oLast:])
		for _, r := range s.collector.Records() {
			sum.Observe(r)
		}
	}
	sum.Faults.Merge(s.collector.Faults)
	sum.Fanout.Merge(s.collector.Fanout)
	report.TransformsVerified += s.TransformsVerified
	report.TransformsFailed += s.TransformsFailed
	return sum, report, nil
}

// windowPartition unions every active (arriving or queued) function's
// candidate nodes and labels each node with its partition, ordered by the
// smallest node ID each partition touches. Nodes no active function can
// reach stay at -1: their pending events defer to a later window.
func windowPartition(s *Simulator, arr []windowArrival) (groups int, nodeGroup []int) {
	parent := make([]int, len(s.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	touched := make([]bool, len(s.nodes))
	unionFn := func(fr *fnRuntime) {
		first := fr.cands[0].ID
		touched[first] = true
		for _, n := range fr.cands[1:] {
			touched[n.ID] = true
			parent[find(first)] = find(n.ID)
		}
	}
	seen := make(map[*fnRuntime]bool, 64)
	for _, a := range arr {
		if !seen[a.fr] {
			seen[a.fr] = true
			unionFn(a.fr)
		}
	}
	// A queued function's drains touch its runtime and nodes exactly like
	// arrivals do, so it partitions as if it arrived.
	for _, n := range s.nodes {
		for _, q := range n.queue {
			if !seen[q.fr] {
				seen[q.fr] = true
				unionFn(q.fr)
			}
		}
	}
	nodeGroup = make([]int, len(s.nodes))
	rootMin := make(map[int]int)
	for id := range s.nodes {
		nodeGroup[id] = -1
		if touched[id] {
			r := find(id)
			if m, ok := rootMin[r]; !ok || id < m {
				rootMin[r] = id
			}
		}
	}
	mins := make([]int, 0, len(rootMin))
	for _, m := range rootMin {
		mins = append(mins, m)
	}
	sort.Ints(mins)
	groupOfRoot := make(map[int]int, len(mins))
	for gi, m := range mins {
		groupOfRoot[find(m)] = gi
	}
	for id := range s.nodes {
		if touched[id] {
			nodeGroup[id] = groupOfRoot[find(id)]
		}
	}
	return len(mins), nodeGroup
}

// runWindowParallel replays one window across partition workers and merges
// the results back deterministically (partitions in min-node order).
func (s *Simulator) runWindowParallel(arr []windowArrival, end time.Duration, final bool, groups int, nodeGroup []int, workers, wi int, crossCheck bool, sum *metrics.Summary) {
	// Partition pending events by owning node; events on unowned nodes (or
	// of kinds the partition argument doesn't cover — impossible under the
	// preconditions, but guarded) defer to a later window.
	perGroupEvents := make([][]event, groups)
	var deferred []event
	for len(s.events) > 0 {
		ev := s.events.pop()
		g := -1
		if ev.kind == evComplete && ev.node != nil {
			g = nodeGroup[ev.node.ID]
		}
		if g < 0 {
			deferred = append(deferred, ev)
			continue
		}
		perGroupEvents[g] = append(perGroupEvents[g], ev)
	}
	perGroupArr := make([][]windowArrival, groups)
	for _, a := range arr {
		g := nodeGroup[a.fr.cands[0].ID]
		perGroupArr[g] = append(perGroupArr[g], a)
	}

	ws := make([]*Simulator, groups)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		w := s.forkWorker()
		for _, ev := range perGroupEvents[g] {
			w.schedule(ev)
		}
		w.collector.Reserve(len(perGroupArr[g]))
		ws[g] = w
		wg.Add(1)
		go func(g int, w *Simulator) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			w.runWindow(perGroupArr[g], end, final)
		}(g, w)
	}
	wg.Wait()

	for g, w := range ws {
		if windowCorruptHook != nil {
			windowCorruptHook(wi, g, w)
		}
		// Leftover worker events re-enter the authoritative heap in worker
		// (at, seq) order; deferred unowned events follow, also in order.
		for len(w.events) > 0 {
			s.schedule(w.events.pop())
		}
		for _, r := range w.collector.Records() {
			if crossCheck {
				s.collector.Add(r)
			} else {
				sum.Observe(r)
			}
		}
		s.collector.Faults.Merge(w.collector.Faults)
		s.collector.Fanout.Merge(w.collector.Fanout)
		s.TransformsVerified += w.TransformsVerified
		s.TransformsFailed += w.TransformsFailed
	}
	for _, ev := range deferred {
		s.schedule(ev)
	}
}
