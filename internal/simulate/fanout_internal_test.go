package simulate

// Whitebox regression tests for the fan-out event-generation protocol: the
// paths that park an orphan (donor crashed, no healthy adopter free) must
// invalidate the completion event scheduled for the dead donation, and
// fanoutDone must refuse a completion the tree did not actually apply.

import (
	"testing"

	"repro/internal/fanout"
	"repro/internal/zoo"
)

// fanoutParkedOrphan builds a simulator mid-crash: childA streams from seed0,
// childB saturates seed1's single outbound stream, then seed0 crashes. seed1
// is healthy but has no free stream, so childA's orphan parks with no adopter
// — the exact shape whose stale completion used to fire.
func fanoutParkedOrphan(t *testing.T) (*Simulator, *fanoutRun, int, int) {
	t.Helper()
	g, err := zoo.Imgclsmob().Get("resnet18-imagenet")
	if err != nil {
		t.Fatal(err)
	}
	fn := &Function{Name: "resnet18-imagenet", Model: g}
	// Policy stays nil: the fan-out paths under test never consult it.
	s := New(Config{
		Nodes: 2, ContainersPerNode: 3,
		Fanout: fanout.Config{Enabled: true, Bandwidth: 1, Threshold: 1, MaxRecipients: 2},
	}, []*Function{fn})
	fr := s.rt(fn)
	run := &fanoutRun{
		fr:   fr,
		ctrs: make(map[int]*Container),
		home: make(map[int]*Node),
		gens: make(map[int]int),
	}
	b := s.env.Profile.ModelLoad(fn.Model)
	run.structDur = s.env.Profile.SandboxInit + b.Structure
	run.weightsDur = b.Weights
	run.fallbackDur = b.Deserialize + b.Weights
	run.tree = fanout.New(s.cfg.Fanout, fn.Name, 2, 0)
	s.fanouts = map[string]*fanoutRun{fn.Name: run}

	n0, n1 := s.nodes[0], s.nodes[1]
	addSeed := func(n *Node) int {
		c := n.newContainer(fn, s.env.GrantFor(fn), 0)
		c.LastDone = 1 // completed a request: seedable
		id := run.tree.AddSeed(n.ID)
		run.ctrs[id] = c
		run.home[id] = n
		return id
	}
	seed0 := addSeed(n0)
	addSeed(n1)

	startChild := func(n *Node) int {
		child, nodeID, ok := run.tree.StartRecipient([]int{n.ID})
		if !ok || nodeID != n.ID {
			t.Fatalf("recipient refused on node %d", n.ID)
		}
		s.startFanoutRecipient(run, child, n)
		a, ok := run.tree.StructDone(child, s.fanoutEligible(run))
		if !ok {
			t.Fatalf("child %d found no donor", child)
		}
		s.scheduleDonation(run, a)
		return child
	}
	childA := startChild(n0) // streams from seed0
	startChild(n1)           // streams from seed1, saturating its bandwidth

	staleGen := run.gens[childA]
	s.clock = run.weightsDur / 2
	s.fanoutCrash(event{at: s.clock, node: n0, c: run.ctrs[seed0],
		fo: run, member: seed0, gen: run.gens[seed0]})
	if st := run.tree.Members()[childA].State; st != fanout.StateBuilding {
		t.Fatalf("orphan should stay building (parked), got %s", st)
	}
	return s, run, childA, staleGen
}

// assertHeld fails when the orphan's container was promoted out of its build
// hold — the corruption the generation protocol exists to prevent.
func assertHeld(t *testing.T, s *Simulator, run *fanoutRun, child int) {
	t.Helper()
	c := run.ctrs[child]
	if c.fanoutFresh || c.fanoutBuilt {
		t.Fatal("parked orphan's container was marked as a completed replica")
	}
	if !c.Busy(s.clock + run.weightsDur) {
		t.Fatal("parked orphan's build hold was released")
	}
	if st := run.tree.Members()[child].State; st != fanout.StateBuilding {
		t.Fatalf("parked orphan left building state: %s", st)
	}
}

func TestFanoutCrashInvalidatesParkedOrphanEvent(t *testing.T) {
	s, run, childA, staleGen := fanoutParkedOrphan(t)
	if run.gens[childA] == staleGen {
		t.Fatal("donor crash left the parked orphan's generation unbumped")
	}
	// Deliver the completion event scheduled for the dead donation anyway: it
	// must die at the generation check without touching the container.
	s.clock = run.weightsDur
	s.fanoutDone(event{at: s.clock, node: run.home[childA], c: run.ctrs[childA],
		fo: run, member: childA, gen: staleGen})
	assertHeld(t, s, run, childA)
}

func TestFanoutDoneRefusesUnappliedCompletion(t *testing.T) {
	s, run, childA, _ := fanoutParkedOrphan(t)
	// Defense in depth behind the generation check: even an event carrying the
	// current generation must not promote a child the tree refuses to
	// complete (it is parked, not streaming).
	s.clock = run.weightsDur
	s.fanoutDone(event{at: s.clock, node: run.home[childA], c: run.ctrs[childA],
		fo: run, member: childA, gen: run.gens[childA]})
	assertHeld(t, s, run, childA)
}
