package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/repository"
	"repro/internal/simulate"
	"repro/internal/zoo"
)

// fakeClock provides a controllable now(), safe for concurrent advance.
type fakeClock struct{ t atomic.Int64 }

func (f *fakeClock) now() time.Duration      { return time.Duration(f.t.Load()) }
func (f *fakeClock) advance(d time.Duration) { f.t.Add(int64(d)) }

func newTestGateway(t *testing.T) (*Gateway, *httptest.Server, *fakeClock) {
	t.Helper()
	clock := &fakeClock{}
	g := New(Config{
		Cluster: simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:     clock.now,
	})
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv, clock
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestHealthz(t *testing.T) {
	_, srv, _ := newTestGateway(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}

func TestRegisterAndListModels(t *testing.T) {
	g, srv, _ := newTestGateway(t)
	m := zoo.Imgclsmob().MustGet("resnet18-imagenet")
	resp, body := post(t, srv.URL+"/api/models", m)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d %v", resp.StatusCode, body)
	}
	if body["name"] != "resnet18-imagenet" {
		t.Errorf("register response: %v", body)
	}
	// Duplicate rejected.
	resp, _ = post(t, srv.URL+"/api/models", m)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register = %d", resp.StatusCode)
	}
	// Listed.
	_, body = get(t, srv.URL+"/api/models")
	models, _ := body["models"].([]any)
	if len(models) != 1 {
		t.Fatalf("models = %v", body)
	}
	// Fetchable by name (round-trips through JSON).
	resp, _ = get(t, srv.URL+"/api/models/resnet18-imagenet")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fetch by name = %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/api/models/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing model fetch = %d", resp.StatusCode)
	}
	_ = g
}

func TestRegisterRejectsInvalid(t *testing.T) {
	_, srv, _ := newTestGateway(t)
	resp, err := http.Post(srv.URL+"/api/models", "application/json", bytes.NewReader([]byte("{{{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed register = %d", resp.StatusCode)
	}
}

func TestInvokeLifecycle(t *testing.T) {
	g, srv, clock := newTestGateway(t)
	img := zoo.Imgclsmob()
	if err := g.RegisterModel(img.MustGet("resnet18-imagenet")); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterModel(img.MustGet("resnet34-imagenet")); err != nil {
		t.Fatal(err)
	}

	// First call: cold.
	resp, body := post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke = %d %v", resp.StatusCode, body)
	}
	if body["start_kind"] != "cold" {
		t.Errorf("first invoke kind = %v", body["start_kind"])
	}
	// Second call soon after: warm.
	clock.advance(30 * time.Second)
	_, body = post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if body["start_kind"] != "warm" {
		t.Errorf("second invoke kind = %v", body["start_kind"])
	}
	// Different model once resnet18's container is idle past the threshold
	// and its owner is overdue (observed inter-arrival 30 s): transform.
	clock.advance(2 * time.Minute)
	_, body = post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet34-imagenet"})
	if body["start_kind"] != "transform" {
		t.Errorf("third invoke kind = %v", body["start_kind"])
	}
	clock.advance(9 * time.Minute) // near keep-alive: containers repurposable
	_, body = post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if body["start_kind"] == "" {
		t.Error("fourth invoke missing kind")
	}

	// Stats reflect the calls.
	_, stats := get(t, srv.URL+"/api/stats")
	if stats["requests"].(float64) != 4 {
		t.Errorf("stats = %v", stats)
	}
	// Unknown model 404s.
	resp, _ = post(t, srv.URL+"/api/invoke", map[string]string{"model": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown invoke = %d", resp.StatusCode)
	}
	// Missing model field 400s.
	resp, _ = post(t, srv.URL+"/api/invoke", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty invoke = %d", resp.StatusCode)
	}
}

func TestPlanEndpoint(t *testing.T) {
	g, srv, _ := newTestGateway(t)
	img := zoo.Imgclsmob()
	_ = g.RegisterModel(img.MustGet("resnet18-imagenet"))
	_ = g.RegisterModel(img.MustGet("resnet34-imagenet"))

	resp, body := get(t, srv.URL+"/api/plan?src=resnet18-imagenet&dst=resnet34-imagenet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan = %d %v", resp.StatusCode, body)
	}
	if body["load_from_scratch"] != false {
		t.Errorf("resnet18→resnet34 safeguarded? %v", body)
	}
	if body["est_ms"].(float64) <= 0 || body["scratch_ms"].(float64) <= 0 {
		t.Errorf("plan costs missing: %v", body)
	}
	resp, _ = get(t, srv.URL+"/api/plan?src=resnet18-imagenet&dst=missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing plan = %d", resp.StatusCode)
	}
}

// TestPlanCachePrewarm verifies Module 3's planning-strategy caching: after
// registrations quiesce, plans between registered models are cache hits.
func TestPlanCachePrewarm(t *testing.T) {
	g, _, _ := newTestGateway(t)
	img := zoo.Imgclsmob()
	a := img.MustGet("resnet18-imagenet")
	b := img.MustGet("resnet34-imagenet")
	_ = g.RegisterModel(a)
	_ = g.RegisterModel(b)
	g.PlanningQuiesce()
	env := g.online.Env()
	if _, ok := env.Plans.Get(a, b); !ok {
		t.Error("a→b plan not precomputed on registration")
	}
	if _, ok := env.Plans.Get(b, a); !ok {
		t.Error("b→a plan not precomputed on registration")
	}
}

func TestMethodGuards(t *testing.T) {
	g, srv, _ := newTestGateway(t)
	_ = g
	for _, c := range []struct{ method, path string }{
		{http.MethodDelete, "/api/models"},
		{http.MethodPost, "/api/plan"},
		{http.MethodPost, "/api/stats"},
		{http.MethodGet, "/api/invoke"},
		{http.MethodPost, "/api/models/x"},
	} {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestUnregisterModel(t *testing.T) {
	g, srv, _ := newTestGateway(t)
	img := zoo.Imgclsmob()
	_ = g.RegisterModel(img.MustGet("resnet18-imagenet"))

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/models/resnet18-imagenet", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	// Invoking the removed model now fails.
	resp, _ = post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("invoke after delete = %d", resp.StatusCode)
	}
	// Double delete 404s.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/api/models/resnet18-imagenet", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete = %d", resp.StatusCode)
	}
}

func TestClusterEndpoint(t *testing.T) {
	g, srv, clock := newTestGateway(t)
	img := zoo.Imgclsmob()
	_ = g.RegisterModel(img.MustGet("resnet18-imagenet"))
	post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	clock.advance(time.Minute)

	_, body := get(t, srv.URL+"/api/cluster")
	nodes, _ := body["nodes"].([]any)
	if len(nodes) != 1 {
		t.Fatalf("cluster nodes = %v", body)
	}
	node := nodes[0].(map[string]any)
	containers, _ := node["containers"].([]any)
	if len(containers) != 1 {
		t.Fatalf("containers = %v", node)
	}
	c := containers[0].(map[string]any)
	if c["function"] != "resnet18-imagenet" {
		t.Errorf("container = %v", c)
	}
	if c["idle_sec"].(float64) <= 0 {
		t.Errorf("container should be idle: %v", c)
	}
}

// TestConcurrentInvokes exercises the gateway's locking under parallel load.
func TestConcurrentInvokes(t *testing.T) {
	g, srv, _ := newTestGateway(t)
	img := zoo.Imgclsmob()
	_ = g.RegisterModel(img.MustGet("resnet18-imagenet"))
	_ = g.RegisterModel(img.MustGet("resnet34-imagenet"))

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "resnet18-imagenet"
			if i%2 == 1 {
				name = "resnet34-imagenet"
			}
			body, _ := json.Marshal(map[string]string{"model": name})
			resp, err := http.Post(srv.URL+"/api/invoke", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	_, stats := get(t, srv.URL+"/api/stats")
	if int(stats["requests"].(float64)) != n {
		t.Errorf("stats requests = %v, want %d", stats["requests"], n)
	}
}

// TestGatewayPersistence: with a repository configured, registrations
// survive a gateway restart.
func TestGatewayPersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := repository.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{}
	g1 := New(Config{
		Cluster:    simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:        clock.now,
		Repository: store,
	})
	img := zoo.Imgclsmob()
	if err := g1.RegisterModel(img.MustGet("resnet18-imagenet")); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new gateway over a fresh store at the same directory.
	store2, err := repository.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2 := New(Config{
		Cluster:    simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:        clock.now,
		Repository: store2,
	})
	srv := httptest.NewServer(g2.Handler())
	defer srv.Close()
	resp, body := post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke after restart = %d %v", resp.StatusCode, body)
	}
	// Unregister also clears the disk.
	if err := g2.UnregisterModel("resnet18-imagenet"); err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 0 {
		t.Error("unregister left the model on disk")
	}
}

// TestRegisterInvalidModel: a model that decodes but fails validation is the
// client's bad request (400), not a conflict.
func TestRegisterInvalidModel(t *testing.T) {
	_, srv, _ := newTestGateway(t)
	resp, body := post(t, srv.URL+"/api/models", map[string]any{"name": "empty"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid model register = %d %v, want 400", resp.StatusCode, body)
	}
}

func TestLoadShedding(t *testing.T) {
	clock := &fakeClock{}
	g := New(Config{
		Cluster:     simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:         clock.now,
		MaxInflight: 1,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Occupy the only admission slot; the next request must be shed.
	g.inflight <- struct{}{}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if g.shed.Load() != 1 {
		t.Errorf("shed counter = %d", g.shed.Load())
	}
	<-g.inflight // release: service resumes
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request = %d", resp.StatusCode)
	}
	// The shed count is visible on /api/stats.
	_, stats := get(t, srv.URL+"/api/stats")
	if stats["shed"].(float64) != 1 {
		t.Errorf("stats shed = %v", stats["shed"])
	}
}

func TestPanicRecovery(t *testing.T) {
	g, _, _ := newTestGateway(t)
	h := g.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler = %d, want 500", rec.Code)
	}
	if g.panics.Load() != 1 {
		t.Errorf("panics counter = %d", g.panics.Load())
	}
}

func TestRequestTimeoutApplied(t *testing.T) {
	clock := &fakeClock{}
	g := New(Config{
		Cluster:        simulate.Config{Nodes: 1, ContainersPerNode: 2},
		Now:            clock.now,
		RequestTimeout: 50 * time.Millisecond,
	})
	// The timeout wraps the whole stack; a handler that outlives it gets a
	// 503 from http.TimeoutHandler. Exercise it with a deliberately slow
	// inner handler spliced into the same middleware shape.
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	h := http.TimeoutHandler(g.recoverPanics(slow), g.timeout, `{"error":"request timed out"}`)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("timed-out request = %d, want 503", resp.StatusCode)
	}
	// The real handler still answers fast requests under the timeout.
	srv2 := httptest.NewServer(g.Handler())
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fast request under timeout = %d", resp.StatusCode)
	}
}

// TestInvokeDroppedIs503: a request that exhausts its crash-retry budget maps
// to a retryable 503, not a 404.
func TestInvokeDroppedIs503(t *testing.T) {
	clock := &fakeClock{}
	g := New(Config{
		Cluster: simulate.Config{
			Nodes: 1, ContainersPerNode: 2,
			Faults:     faults.Rates{Crash: 1},
			MaxRetries: -1,
		},
		Now: clock.now,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	if err := g.RegisterModel(zoo.Imgclsmob().MustGet("resnet18-imagenet")); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, srv.URL+"/api/invoke", map[string]string{"model": "resnet18-imagenet"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dropped invoke = %d %v, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("dropped invoke missing Retry-After")
	}
	_, stats := get(t, srv.URL+"/api/stats")
	faultMap := stats["faults"].(map[string]any)
	if faultMap["dropped"].(float64) != 1 || faultMap["crashes"].(float64) != 1 {
		t.Errorf("stats faults = %v", faultMap)
	}
}

// TestGatewayStress hammers every mutating and reading endpoint from parallel
// goroutines; run under -race this is the regression test for the
// snapshot/stats/registration data races.
func TestGatewayStress(t *testing.T) {
	clock := &fakeClock{}
	g := New(Config{
		Cluster:        simulate.Config{Nodes: 2, ContainersPerNode: 2},
		Now:            clock.now,
		MaxInflight:    64,
		RequestTimeout: 5 * time.Second,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	img := zoo.Imgclsmob()
	if err := g.RegisterModel(img.MustGet("resnet18-imagenet")); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterModel(img.MustGet("resnet34-imagenet")); err != nil {
		t.Fatal(err)
	}
	churn := img.MustGet("mobilenet-w1-imagenet")

	const (
		workers = 8
		iters   = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	do := func(f func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := f(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for w := 0; w < workers/2; w++ {
		do(func(i int) error { // invokers
			name := "resnet18-imagenet"
			if i%2 == 1 {
				name = "resnet34-imagenet"
			}
			raw, _ := json.Marshal(map[string]string{"model": name})
			resp, err := http.Post(srv.URL+"/api/invoke", "application/json", bytes.NewReader(raw))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				return fmt.Errorf("invoke status %d", resp.StatusCode)
			}
			return nil
		})
	}
	do(func(int) error { // cluster readers race the invokers
		resp, err := http.Get(srv.URL + "/api/cluster")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
	do(func(int) error { // stats readers race the collector
		resp, err := http.Get(srv.URL + "/api/stats")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
	do(func(int) error { // registration churn races both
		if err := g.RegisterModel(churn); err != nil && !errors.Is(err, ErrDuplicateModel) {
			return err
		}
		if err := g.UnregisterModel(churn.Name); err != nil && !errors.Is(err, ErrUnknownModel) {
			return err
		}
		return nil
	})
	do(func(int) error { // clock keeps moving under everything
		clock.advance(250 * time.Millisecond)
		return nil
	})
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestModelsListSorted is the regression test for the map-iteration-order
// leak optimus-lint's maprange checker found in the models listing: the
// response must come back sorted no matter what order models registered in.
func TestModelsListSorted(t *testing.T) {
	g, srv, _ := newTestGateway(t)
	img := zoo.Imgclsmob()
	for _, name := range []string{
		"vgg16-imagenet",
		"resnet10-cifar10",
		"bn-vgg13-cifar100",
		"resnet18-imagenet",
		"resnet14-cifar100",
		"vgg11-imagenet",
	} {
		if err := g.RegisterModel(img.MustGet(name)); err != nil {
			t.Fatal(err)
		}
	}
	_, body := get(t, srv.URL+"/api/models")
	raw, _ := body["models"].([]any)
	if len(raw) != 6 {
		t.Fatalf("models = %v", body)
	}
	names := make([]string, len(raw))
	for i, v := range raw {
		names[i], _ = v.(string)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("GET /api/models not sorted: %v", names)
	}
}
