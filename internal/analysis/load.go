package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked module package.
type Package struct {
	// Path is the import path (modPath for the root directory).
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir string
	// Fset is shared across every package the loader touched.
	Fset *token.FileSet
	// Files are the non-test source files, parsed with comments.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// Src maps each file's path to its raw source, kept for the directive
	// scanner's trailing-comment detection.
	Src map[string][]byte
}

// Loader parses and type-checks packages of a single module entirely
// offline: module-local import paths resolve recursively through the loader
// itself, everything else (the standard library) resolves through the
// go/importer source importer, which compiles from GOROOT sources and so
// needs neither a network nor prebuilt export data.
//
// Test files (_test.go) and testdata directories are excluded: the linter
// certifies the shipped packages, and test code legitimately uses wall
// clocks and ad-hoc ordering.
type Loader struct {
	root string
	mod  string
	fset *token.FileSet
	pkgs map[string]*Package
	busy map[string]bool
}

// The standard-library source importer is memoized process-wide: it compiles
// each stdlib package from GOROOT sources exactly once, no matter how many
// Loaders (lint runs, fixture packages, fuzz iterations) ask for it. The
// importer caches by import path internally, so sharing one instance — and
// the FileSet its positions live in — turns the dominant cost of a lint run
// (re-type-checking the stdlib per load) into a one-time cost. A mutex
// serializes access: the source importer is not safe for concurrent use.
var (
	stdOnce sync.Once
	stdMu   sync.Mutex
	stdFset *token.FileSet
	stdImp  types.ImporterFrom
)

// sharedStd returns the process-wide FileSet and stdlib source importer.
func sharedStd() (*token.FileSet, types.ImporterFrom) {
	stdOnce.Do(func() {
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil).(types.ImporterFrom)
	})
	return stdFset, stdImp
}

// stdImport resolves a non-module import through the shared source importer.
func stdImport(path, dir string, mode types.ImportMode) (*types.Package, error) {
	_, imp := sharedStd()
	stdMu.Lock()
	defer stdMu.Unlock()
	return imp.ImportFrom(path, dir, mode)
}

// NewLoader returns a loader for the module with the given root directory
// and module path. Loaders share one process-wide FileSet and stdlib source
// importer, so standard-library dependencies are type-checked once per
// process rather than once per loader.
func NewLoader(root, modPath string) *Loader {
	fset, _ := sharedStd()
	return &Loader{
		root: root,
		mod:  modPath,
		fset: fset,
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
}

// Load expands the patterns (./..., ./dir/..., ./dir) against the module
// tree and returns the matched packages, parsed and type-checked, sorted by
// import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	matched := make(map[string]bool)
	for _, pat := range patterns {
		any := false
		for _, d := range dirs {
			if matchPattern(pat, d.rel) {
				matched[d.rel] = true
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("analysis: pattern %q matched no packages", pat)
		}
	}
	rels := make([]string, 0, len(matched))
	for rel := range matched {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	out := make([]*Package, 0, len(rels))
	for _, rel := range rels {
		pkg, err := l.loadPath(l.pathFor(rel))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type pkgDir struct {
	rel string // "" for the module root
	abs string
}

// packageDirs walks the module tree for directories holding at least one
// non-test .go file, skipping VCS, testdata and hidden directories.
func (l *Loader) packageDirs() ([]pkgDir, error) {
	var out []pkgDir
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			rel, err := filepath.Rel(l.root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			out = append(out, pkgDir{rel: filepath.ToSlash(rel), abs: path})
		}
		return nil
	})
	return out, err
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// matchPattern reports whether a go-tool style pattern matches the
// module-relative package directory ("" is the root package).
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = filepath.ToSlash(pat)
	switch {
	case pat == "..." || pat == ".":
		return pat == "..." || rel == ""
	case strings.HasSuffix(pat, "/..."):
		base := strings.TrimSuffix(pat, "/...")
		return rel == base || strings.HasPrefix(rel, base+"/")
	default:
		return rel == strings.TrimSuffix(pat, "/")
	}
}

func (l *Loader) pathFor(rel string) string {
	if rel == "" {
		return l.mod
	}
	return l.mod + "/" + rel
}

// loadPath parses and type-checks one module package (by import path),
// memoized across the loader's lifetime.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.mod), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Src:  make(map[string][]byte),
	}
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(l.fset, fname, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Src[fname] = src
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	pkg.Info = NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// NewInfo allocates a types.Info with every resolution map the checkers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load through
// the loader, everything else through the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdImport(path, dir, mode)
}

// Packages returns every module package the loader has type-checked so far —
// pattern-matched packages and their module-local dependencies alike —
// sorted by import path. The call-graph builder consumes this set so
// interprocedural facts cross package boundaries.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// FindModule walks upward from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}
