// Package panicpath is the fixture for the panicpath checker: loaded under
// a library import path, naked panics must be reported unless suppressed as
// documented cross-check oracles; returning errors must stay silent.
package panicpath

import "fmt"

func bad(x int) int {
	if x < 0 {
		panic("negative input") // want `naked panic in library package`
	}
	return x
}

func badWrapped(err error) {
	if err != nil {
		panic(fmt.Sprintf("unrecoverable: %v", err)) // want `naked panic in library package`
	}
}

func good(x int) (int, error) {
	if x < 0 {
		return 0, fmt.Errorf("negative input %d", x)
	}
	return x, nil
}

// oracle shows the sanctioned escape hatch: a cross-check oracle whose
// suppression directive names the checker and carries a reason.
func oracle(indexed, scanned int) {
	if indexed != scanned {
		//optimus:allow panicpath — cross-check oracle: index and scan disagree
		panic("oracle: indexed routing diverged from scan baseline")
	}
}
