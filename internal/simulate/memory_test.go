package simulate_test

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
	"repro/internal/zoo"
)

func TestMemoryFootprintModel(t *testing.T) {
	p := cost.CPU()
	img := zoo.Imgclsmob()
	small := p.MemoryMB(img.MustGet("squeezenet-v1.1-imagenet"))
	big := p.MemoryMB(img.MustGet("vgg16-imagenet"))
	if small <= p.RuntimeMemMB {
		t.Errorf("small model footprint %d should exceed the runtime base %d", small, p.RuntimeMemMB)
	}
	if big <= small {
		t.Errorf("vgg16 footprint %d should exceed squeezenet %d", big, small)
	}
	// VGG16 = 528 MB of weights → ≈ 400 + 2×528 ≈ 1456 MB.
	if big < 1200 || big > 1800 {
		t.Errorf("vgg16 footprint = %d MB, want ≈ 1456", big)
	}
}

func TestHomogeneousMemoryBoundsContainers(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet")
	// 3 GB node, 1.5 GB uniform grants → at most 2 containers despite 8 slots.
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet34-imagenet", At: time.Millisecond},
			{Function: "resnet50-imagenet", At: 2 * time.Millisecond},
		},
	}
	sim := simulate.New(simulate.Config{
		Policy:            policy.OpenWhisk{},
		Nodes:             1,
		ContainersPerNode: 8,
		NodeMemoryMB:      3000,
		ContainerMemoryMB: 1500,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 3 {
		t.Fatalf("served %d", col.Len())
	}
	// The third request must have waited: only two containers fit and both
	// are busy at its arrival.
	if col.Records()[2].Wait == 0 {
		t.Error("memory bound not enforced: third request did not queue")
	}
	for _, c := range sim.Nodes()[0].Containers {
		if c.MemMB != 1500 {
			t.Errorf("homogeneous grant = %d, want 1500", c.MemMB)
		}
	}
	if used := sim.Nodes()[0].UsedMB(); used > 3000 {
		t.Errorf("node over-committed: %d MB", used)
	}
}

func TestFineGrainedPacksMore(t *testing.T) {
	names := []string{
		"squeezenet-v1.1-imagenet", "mobilenet-w0.25-imagenet",
		"shufflenetv2-w0.5-imagenet", "mobilenetv2-w0.5-imagenet",
	}
	fns := testFunctions(t, names...)
	reqs := make([]workload.Request, len(names))
	for i, n := range names {
		reqs[i] = workload.Request{Function: n, At: time.Duration(i) * time.Millisecond}
	}
	tr := &workload.Trace{Duration: time.Hour, Requests: reqs}

	run := func(containerMB int) int {
		sim := simulate.New(simulate.Config{
			Policy:            policy.OpenWhisk{},
			Nodes:             1,
			ContainersPerNode: 16,
			NodeMemoryMB:      2000,
			ContainerMemoryMB: containerMB,
		}, fns)
		if _, err := sim.Run(tr); err != nil {
			t.Fatal(err)
		}
		return len(sim.Nodes()[0].Containers)
	}
	homog := run(1000) // 2 × 1000 MB fit
	fine := run(0)     // model-sized: all four small models fit
	if homog >= fine {
		t.Errorf("fine-grained packed %d containers, homogeneous %d — expected more", fine, homog)
	}
	if fine != len(names) {
		t.Errorf("fine-grained should fit all %d small models, got %d", len(names), fine)
	}
}

func TestFineGrainedResizeOnTransform(t *testing.T) {
	fns := testFunctions(t, "vgg16-imagenet", "squeezenet-v1.1-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "vgg16-imagenet", At: 0},
			// Repurpose vgg16's big container for the small model.
			{Function: "squeezenet-v1.1-imagenet", At: 6 * time.Minute},
		},
	}
	sim := simulate.New(simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             1,
		ContainersPerNode: 1,
		NodeMemoryMB:      4000,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Records()[1].Kind; got != metrics.StartTransform {
		t.Fatalf("second request kind = %v", got)
	}
	c := sim.Nodes()[0].Containers[0]
	want := cost.CPU().MemoryMB(fns[1].Model)
	if c.MemMB != want {
		t.Errorf("fine-grained transform did not resize: %d MB, want %d", c.MemMB, want)
	}
}

func TestDonorMustFitDestination(t *testing.T) {
	// A small fine-grained container cannot be repurposed for a big model.
	fns := testFunctions(t, "squeezenet-v1.1-imagenet", "vgg16-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "squeezenet-v1.1-imagenet", At: 0},
			{Function: "vgg16-imagenet", At: 6 * time.Minute},
		},
	}
	sim := simulate.New(simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             1,
		ContainersPerNode: 4,
		NodeMemoryMB:      8000,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Records()[1].Kind; got != metrics.StartCold {
		t.Errorf("big model repurposed a too-small donor: kind %v", got)
	}
}
