// Package controlplane scales the Optimus gateway horizontally: N
// cooperating gateway instances partition function and plan-pair ownership
// over a consistent-hash ring (package ring), forward requests to owners,
// and share one logical plan cache — the owner of a pair plans it once and
// peers pull the result instead of re-running the Hungarian planner.
//
// Membership changes ride the existing health state machine (package
// health): members the tracker says to avoid are de-owned (taken off the
// ring, kept alive), recovered members rejoin, and an explicit Drain hands a
// member's plans to the new owners before it departs, so ownership migration
// never loses or duplicates planning work.
//
// Concurrency is fenced by one topology RWMutex: request serving and model
// registration hold it for read, every ring mutation (drain, de-own,
// rejoin, join) holds it for write. Ring ownership is therefore frozen for
// the duration of any single request, which keeps the cross-gateway
// singleflight one-hop by construction: a non-owner miss pulls through the
// owner's loader-free GetOrPlanLocal, and no pull can chain into a second
// pull or wait across a membership change.
package controlplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/health"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/ring"
	"repro/internal/simulate"
)

// ErrNoMembers reports an invoke against an empty (or fully de-owned) ring.
var ErrNoMembers = errors.New("controlplane: no live members on the ring")

// ErrUnknownMember reports an operation naming a member the cluster does not
// have.
var ErrUnknownMember = errors.New("controlplane: unknown member")

// DefaultReplicateThreshold is the pull count at which a plan-pair is judged
// hot and pushed to every member's cache.
const DefaultReplicateThreshold = 2

// Config parameterizes an in-process multi-gateway cluster.
type Config struct {
	// Members is the initial gateway count (named gw-0..gw-N-1).
	Members int
	// Seed drives the ring hash and each member's sub-cluster seed
	// (member i runs at Base.Seed mixed with i, so members are distinct but
	// the whole cluster is reproducible).
	Seed int64
	// VNodes is the ring's virtual-node count (0 → ring.DefaultVNodes).
	VNodes int
	// Base is the per-member simulated sub-cluster configuration; Seed is
	// overridden per member.
	Base simulate.Config
	// Now supplies the cluster clock (defaults to wall offset, like the
	// gateway). Benches and tests inject virtual time.
	Now func() time.Duration
	// PlanWorkers bounds each member's offline-planning pool.
	PlanWorkers int
	// Precompute enables registration-time plan precomputation of ring-owned
	// pairs. Off, every plan is demanded by the serving path (the shared-
	// versus-isolated cache benchmark runs this way so cache traffic is
	// load-driven).
	Precompute bool
	// SharedCache installs the cross-gateway loader (owner-pull + hot
	// replication). Off, each member plans all its misses locally — the
	// isolated baseline the benchmark contrasts against.
	SharedCache bool
	// ReplicateThreshold is the pull count promoting a pair to every
	// member's cache (0 → DefaultReplicateThreshold, negative disables
	// replication).
	ReplicateThreshold int
	// Health configures the member health tracker driving de-own/rejoin; the
	// zero value disables it (members only leave via Drain).
	Health health.Config
}

// member is one gateway instance plus its cluster-side bookkeeping.
type member struct {
	name string
	// idx is the member's stable health-tracker index, assigned at creation
	// and never reused.
	idx int
	gw  *gateway.Gateway

	draining bool

	// forwards counts requests served here that entered at another member;
	// pulls counts plans fetched from this member by peers.
	forwards, pulls int
}

// Cluster is an in-process multi-gateway control plane. The HTTP equivalent
// for separate processes is Proxy.
type Cluster struct {
	cfg Config

	// topo fences topology: Invoke/RegisterModel hold it for read, ring
	// mutations (Drain, Reconcile, Join) for write. The ring itself is only
	// accessed under topo.
	topo sync.RWMutex
	ring *ring.Ring

	// mu guards the fields below: counters, the catalog, pull tallies and
	// the health tracker (which is not itself concurrency-safe).
	mu      sync.Mutex
	members map[string]*member
	catalog map[string]*model.Graph
	// order is the catalog's registration order (deterministic enumeration
	// for handoff copy passes).
	order []string
	// pullCounts tallies cross-gateway pulls per pair key; reaching the
	// replicate threshold pushes the plan everywhere.
	pullCounts   map[string]int
	replications int
	forwards     int
	nextIdx      int
	tracker      *health.Tracker
	now          func() time.Duration
}

// NewCluster builds and starts cfg.Members gateways.
func NewCluster(cfg Config) *Cluster {
	if cfg.Members <= 0 {
		cfg.Members = 1
	}
	if cfg.ReplicateThreshold == 0 {
		cfg.ReplicateThreshold = DefaultReplicateThreshold
	}
	now := cfg.Now
	if now == nil {
		// Default interactive clock, like gateway.New; benches inject
		// virtual time (controlplane is a real-time package, so wall reads
		// are allowed here).
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	cl := &Cluster{
		cfg:        cfg,
		ring:       ring.New(cfg.Seed, cfg.VNodes),
		members:    make(map[string]*member),
		catalog:    make(map[string]*model.Graph),
		pullCounts: make(map[string]int),
		now:        now,
	}
	if cfg.Health.Enabled {
		// Size the tracker for the initial membership plus join headroom;
		// indices are stable and never reused.
		cl.tracker = health.New(cfg.Health, cfg.Members+8)
	}
	for i := 0; i < cfg.Members; i++ {
		name := fmt.Sprintf("gw-%d", i)
		cl.addMemberLocked(name)
		cl.ring.Add(name)
	}
	return cl
}

// pairKey is the ring key of an ordered plan pair. The separator cannot
// appear in model names (they come from zoo registries and HTTP
// registrations of validated graphs).
func pairKey(src, dst string) string { return src + "\x00" + dst }

// addMemberLocked creates a gateway for name and registers it with the
// cluster (not the ring). Callers hold topo exclusively or are inside
// NewCluster.
func (cl *Cluster) addMemberLocked(name string) *member {
	sub := cl.cfg.Base
	// splitmix-style index mixing keeps sub-cluster fault/noise streams
	// distinct per member while the whole cluster stays a function of Seed.
	sub.Seed = cl.cfg.Seed + int64(cl.nextIdx+1)*int64(0x9e3779b9)
	m := &member{name: name, idx: cl.nextIdx}
	cl.nextIdx++
	gcfg := gateway.Config{
		Cluster:     sub,
		Now:         cl.now,
		PlanWorkers: cl.cfg.PlanWorkers,
	}
	if cl.cfg.Precompute {
		gcfg.PlanPairFilter = func(src, dst *model.Graph) bool {
			return cl.ownsPair(name, src.Name, dst.Name)
		}
	} else {
		gcfg.PlanPairFilter = func(src, dst *model.Graph) bool { return false }
	}
	m.gw = gateway.New(gcfg)
	if cl.cfg.SharedCache {
		m.gw.Env().Plans.SetLoader(cl.loaderFor(m))
	}
	cl.members[name] = m
	return m
}

// ownsPair reports whether name currently owns the ordered pair on the ring.
// Called from registration-time plan-pair filters, which run under topo read
// (registration) — never from precompute workers, which are loader-free.
func (cl *Cluster) ownsPair(name, src, dst string) bool {
	owner, ok := cl.ring.Owner(pairKey(src, dst))
	return ok && owner == name
}

// loaderFor builds the cross-gateway plan loader for m: a local miss pulls
// from the pair's ring owner (one hop — the owner's side never consults its
// own loader), tallying pulls and replicating hot pairs. Self-owned or
// unroutable pairs return false and plan locally.
func (cl *Cluster) loaderFor(m *member) func(src, dst *model.Graph) (*metaop.Plan, bool) {
	return func(src, dst *model.Graph) (*metaop.Plan, bool) {
		key := pairKey(src.Name, dst.Name)
		// Ring reads are safe here: the serving path that triggered this
		// miss holds topo for read, so ownership cannot move mid-pull.
		owner, ok := cl.ring.Owner(key)
		if !ok || owner == m.name {
			return nil, false
		}
		cl.mu.Lock()
		tgt, live := cl.members[owner]
		cl.mu.Unlock()
		if !live {
			return nil, false
		}
		env := tgt.gw.Env()
		p := env.Plans.GetOrPlanLocal(env.Planner, src, dst)

		cl.mu.Lock()
		tgt.pulls++
		cl.pullCounts[key]++
		replicate := cl.cfg.ReplicateThreshold > 0 && cl.pullCounts[key] == cl.cfg.ReplicateThreshold
		var targets []*member
		if replicate {
			cl.replications++
			for _, om := range cl.members {
				if om != m && om != tgt {
					targets = append(targets, om)
				}
			}
			sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })
		}
		cl.mu.Unlock()
		// Hot pair: push the plan to every other member so future misses
		// everywhere become local hits (the puller's own insert happens in
		// its GetOrPlan flight).
		for _, om := range targets {
			om.gw.Env().Plans.Put(src, dst, p)
		}
		return p, true
	}
}

// RegisterModel registers m on every non-draining member (the broadcast that
// keeps catalogs identical cluster-wide). Each member's plan precompute is
// filtered to its ring-owned pairs.
func (cl *Cluster) RegisterModel(g *model.Graph) error {
	cl.topo.RLock()
	defer cl.topo.RUnlock()
	cl.mu.Lock()
	if _, dup := cl.catalog[g.Name]; dup {
		cl.mu.Unlock()
		return fmt.Errorf("controlplane: model %q: %w", g.Name, gateway.ErrDuplicateModel)
	}
	cl.catalog[g.Name] = g
	cl.order = append(cl.order, g.Name)
	targets := cl.liveMembersLocked()
	cl.mu.Unlock()
	for _, m := range targets {
		if err := m.gw.RegisterModel(g); err != nil && !errors.Is(err, gateway.ErrDuplicateModel) {
			return fmt.Errorf("controlplane: registering %s on %s: %w", g.Name, m.name, err)
		}
	}
	return nil
}

// liveMembersLocked returns the non-draining members sorted by name; callers
// hold cl.mu.
func (cl *Cluster) liveMembersLocked() []*member {
	out := make([]*member, 0, len(cl.members))
	for _, m := range cl.members {
		if !m.draining {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Invoke serves one request for function fn arriving at entry member `entry`
// at time now: the ring resolves the owner, non-owned requests forward, and
// the owner's gateway serves. forwarded reports whether the request crossed
// members.
func (cl *Cluster) Invoke(entry, fn string, now time.Duration) (rec metrics.Record, forwarded bool, err error) {
	cl.topo.RLock()
	defer cl.topo.RUnlock()
	owner, ok := cl.ring.Owner(fn)
	if !ok {
		return metrics.Record{}, false, ErrNoMembers
	}
	cl.mu.Lock()
	m, live := cl.members[owner]
	if !live {
		cl.mu.Unlock()
		return metrics.Record{}, false, fmt.Errorf("%w: ring owner %q", ErrUnknownMember, owner)
	}
	forwarded = entry != owner
	if forwarded {
		cl.forwards++
		m.forwards++
	}
	idx := m.idx
	cl.mu.Unlock()

	rec, err = m.gw.Invoke(fn, now)

	if cl.tracker != nil {
		cl.mu.Lock()
		if err != nil {
			cl.tracker.ObserveFailure(idx, now)
		} else {
			cl.tracker.ObserveServed(idx, now, rec.End-rec.Start)
		}
		cl.mu.Unlock()
	}
	return rec, forwarded, err
}

// Owner resolves fn's ring owner.
func (cl *Cluster) Owner(fn string) (string, bool) {
	cl.topo.RLock()
	defer cl.topo.RUnlock()
	return cl.ring.Owner(fn)
}

// Members returns the current member names, sorted.
func (cl *Cluster) Members() []string {
	cl.topo.RLock()
	defer cl.topo.RUnlock()
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]string, 0, len(cl.members))
	for n := range cl.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Member returns a member's gateway (tests and stats readers).
func (cl *Cluster) Member(name string) (*gateway.Gateway, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	m, ok := cl.members[name]
	if !ok {
		return nil, false
	}
	return m.gw, true
}

// PlanningQuiesce waits for every member's precompute backlog.
func (cl *Cluster) PlanningQuiesce() {
	cl.mu.Lock()
	ms := make([]*member, 0, len(cl.members))
	for _, m := range cl.members {
		ms = append(ms, m)
	}
	cl.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		m.gw.PlanningQuiesce()
		m.gw.Env().Plans.FlightsQuiesce()
	}
}

// Drain removes a member gracefully: it stops receiving registrations,
// finishes its planning backlog, leaves the ring, hands every plan it holds
// to the pairs' new owners, and departs. The topology write lock makes the
// leave-plus-handoff atomic with respect to serving: a request either routed
// to the member before the drain (and was fully served), or routes to the
// new owner and finds the copied plan — no request observes the gap, so
// nothing is lost and nothing is planned twice.
func (cl *Cluster) Drain(name string) error {
	cl.mu.Lock()
	m, ok := cl.members[name]
	if !ok || m.draining {
		cl.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownMember, name)
		}
		return fmt.Errorf("controlplane: member %q already draining", name)
	}
	m.draining = true
	cl.mu.Unlock()

	// Finish the member's own planning work while it still owns its keys
	// (and still serves): after this, its cache holds every pair it owes.
	m.gw.PlanningQuiesce()
	m.gw.Env().Plans.FlightsQuiesce()

	cl.topo.Lock()
	// No requests or registrations are in flight past this point, and the
	// member's planning pipeline is quiet: its cache is final.
	cl.ring.Remove(name)
	cl.handoffLocked(m)
	cl.mu.Lock()
	delete(cl.members, name)
	if cl.tracker != nil {
		cl.tracker.NoteDrained(m.idx, cl.now())
	}
	cl.mu.Unlock()
	cl.topo.Unlock()
	return nil
}

// handoffLocked copies every plan the leaving (or joining — see Join) side
// owes to its current ring owner. Callers hold topo exclusively; the catalog
// is enumerated in registration order so the copy pass is deterministic.
func (cl *Cluster) handoffLocked(from *member) {
	cl.mu.Lock()
	names := append([]string(nil), cl.order...)
	graphs := make(map[string]*model.Graph, len(cl.catalog))
	for k, v := range cl.catalog {
		graphs[k] = v
	}
	cl.mu.Unlock()
	env := from.gw.Env()
	for _, srcName := range names {
		for _, dstName := range names {
			if srcName == dstName {
				continue
			}
			p, ok := env.Plans.Get(graphs[srcName], graphs[dstName])
			if !ok {
				continue
			}
			owner, ok := cl.ring.Owner(pairKey(srcName, dstName))
			if !ok || owner == from.name {
				continue
			}
			cl.mu.Lock()
			tgt, live := cl.members[owner]
			cl.mu.Unlock()
			if live {
				tgt.gw.Env().Plans.Put(graphs[srcName], graphs[dstName], p)
			}
		}
	}
}

// Join adds a fresh member: it registers the whole catalog, takes its ring
// position, and is warmed by the reverse handoff — every pair the ring now
// assigns to it is copied from the pair's previous owner, so joining moves
// ownership without re-planning anything.
func (cl *Cluster) Join(name string) error {
	cl.topo.Lock()
	defer cl.topo.Unlock()
	cl.mu.Lock()
	if _, dup := cl.members[name]; dup {
		cl.mu.Unlock()
		return fmt.Errorf("controlplane: member %q already present", name)
	}
	m := cl.addMemberLocked(name)
	names := append([]string(nil), cl.order...)
	graphs := make(map[string]*model.Graph, len(cl.catalog))
	for k, v := range cl.catalog {
		graphs[k] = v
	}
	cl.mu.Unlock()

	// Warm before owning: copy the joiner's stolen pairs from their current
	// owners, then flip the ring. Registration after the ring flip filters
	// precompute to owned pairs, all of which the copy just made cache hits.
	stolen := make(map[string]string) // pair key → old owner
	for _, s := range names {
		for _, d := range names {
			if s != d {
				if o, ok := cl.ring.Owner(pairKey(s, d)); ok {
					stolen[pairKey(s, d)] = o
				}
			}
		}
	}
	cl.ring.Add(name)
	env := m.gw.Env()
	for _, s := range names {
		for _, d := range names {
			if s == d {
				continue
			}
			key := pairKey(s, d)
			newOwner, ok := cl.ring.Owner(key)
			if !ok || newOwner != name {
				continue
			}
			oldName := stolen[key]
			cl.mu.Lock()
			old, live := cl.members[oldName]
			cl.mu.Unlock()
			if !live {
				continue
			}
			if p, ok := old.gw.Env().Plans.Get(graphs[s], graphs[d]); ok {
				env.Plans.Put(graphs[s], graphs[d], p)
			}
		}
	}
	for _, n := range names {
		if err := m.gw.RegisterModel(graphs[n]); err != nil {
			return fmt.Errorf("controlplane: joining %s: %w", name, err)
		}
	}
	return nil
}

// Reconcile drives ring membership from the health tracker: members the
// tracker says to avoid are de-owned (removed from the ring but kept alive,
// caches intact), and previously de-owned members that recovered rejoin. A
// no-op without a health tracker. Returns the members de-owned and rejoined.
func (cl *Cluster) Reconcile(now time.Duration) (deowned, rejoined []string) {
	if cl.tracker == nil {
		return nil, nil
	}
	cl.topo.Lock()
	defer cl.topo.Unlock()
	cl.mu.Lock()
	type decision struct {
		name  string
		avoid bool
	}
	var ds []decision
	for _, m := range cl.members {
		if m.draining {
			continue
		}
		ds = append(ds, decision{m.name, cl.tracker.Avoid(m.idx, now)})
	}
	cl.mu.Unlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].name < ds[j].name })
	for _, d := range ds {
		onRing := cl.ring.Has(d.name)
		switch {
		case d.avoid && onRing:
			// De-own, don't drain: the member keeps its cache, so pairs it
			// planned survive for a pull-through once it rejoins; its
			// re-owned pairs may be re-planned by the new owners meanwhile
			// (bounded duplicate work, unlike losing the member entirely).
			cl.ring.Remove(d.name)
			deowned = append(deowned, d.name)
		case !d.avoid && !onRing:
			cl.ring.Add(d.name)
			rejoined = append(rejoined, d.name)
		}
	}
	return deowned, rejoined
}

// Health exposes the member health tracker (nil when disabled). Callers
// racing with invokes must not mutate it.
func (cl *Cluster) Health() *health.Tracker { return cl.tracker }

// MemberStats is one member's cluster-side view.
type MemberStats struct {
	Name string
	// OnRing reports ring membership (de-owned members are off-ring but
	// alive); Draining marks a member mid-Drain.
	OnRing, Draining bool
	// Forwards counts requests served here that entered elsewhere; Pulls
	// counts plans peers fetched from here.
	Forwards, Pulls int
	// Requests is the member's served-request count; Cache its plan-cache
	// counter snapshot.
	Requests int
	Cache    planner.Counters
}

// Stats summarizes the cluster: per-member rows sorted by name plus the
// cluster-wide totals.
type Stats struct {
	Members      []MemberStats
	Forwards     int
	Replications int
	RingMembers  int
}

// Stats returns a point-in-time cluster summary.
func (cl *Cluster) Stats() Stats {
	cl.topo.RLock()
	defer cl.topo.RUnlock()
	cl.mu.Lock()
	ms := make([]*member, 0, len(cl.members))
	for _, m := range cl.members {
		ms = append(ms, m)
	}
	out := Stats{Forwards: cl.forwards, Replications: cl.replications, RingMembers: cl.ring.Len()}
	cl.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		requests := 0
		m.gw.Online().ReadCollector(func(col *metrics.Collector) { requests = col.Len() })
		cl.mu.Lock()
		row := MemberStats{
			Name: m.name, OnRing: cl.ring.Has(m.name), Draining: m.draining,
			Forwards: m.forwards, Pulls: m.pulls, Requests: requests,
			Cache: m.gw.Env().Plans.Counters(),
		}
		cl.mu.Unlock()
		out.Members = append(out.Members, row)
	}
	return out
}

// Rule is one row of the control-plane protocol table, kept in lockstep with
// DESIGN.md's "Multi-gateway control plane" section by the design test.
type Rule struct {
	Event, Action, Note string
}

// Protocol returns the control-plane event/action protocol.
func Protocol() []Rule {
	return []Rule{
		{"invoke", "route-to-owner", "the entry member resolves the function's ring owner and forwards; the owner serves and records the request"},
		{"plan-miss", "pull-from-owner", "a non-owner cache miss pulls the plan from the pair's ring owner in one hop (the owner side never pulls again); pulls are singleflighted per pair"},
		{"hot-pair", "replicate", "a pair pulled ReplicateThreshold times is pushed to every member's cache, making later misses local hits"},
		{"register", "broadcast", "models register on every non-draining member; each member precomputes only the pairs it owns on the ring"},
		{"suspect", "deown", "a member the health tracker flags is removed from the ring but kept alive with its cache intact; requests route around it"},
		{"recovered", "rejoin", "a de-owned member that clears the health tracker re-enters the ring, taking back only its own keys"},
		{"drain", "handoff", "a draining member finishes its planning backlog, leaves the ring, copies every plan it holds to the new owners under the topology write lock, and departs"},
	}
}
