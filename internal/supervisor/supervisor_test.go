package supervisor

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

func TestBreakerDisabledIsNil(t *testing.T) {
	if b := NewBreaker(BreakerConfig{}); b != nil {
		t.Fatal("zero threshold should disable the breaker")
	}
	var b *Breaker
	if !b.Allow("a", "b", 0) {
		t.Fatal("nil breaker must always allow")
	}
	b.RecordFailure("a", "b", 0) // must not panic
	b.RecordSuccess("a", "b")
	if got := b.State("a", "b"); got != BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
	if b.Stats() != (BreakerStats{}) {
		t.Fatal("nil breaker has stats")
	}
}

func TestBreakerOpensAfterExactlyN(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		b.RecordFailure("src", "dst", time.Duration(i))
		if st := b.State("src", "dst"); st != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, st)
		}
	}
	b.RecordFailure("src", "dst", 2)
	if st := b.State("src", "dst"); st != BreakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", st)
	}
	if st := b.Stats(); st.Opens != 1 {
		t.Fatalf("Opens = %d, want 1", st.Opens)
	}
	// Other pairs are independent.
	if st := b.State("src", "other"); st != BreakerClosed {
		t.Fatalf("unrelated pair state = %v, want closed", st)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2})
	b.RecordFailure("a", "b", 0)
	b.RecordSuccess("a", "b") // breaks the streak
	b.RecordFailure("a", "b", 1)
	if st := b.State("a", "b"); st != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", st)
	}
	b.RecordFailure("a", "b", 2)
	if st := b.State("a", "b"); st != BreakerOpen {
		t.Fatalf("2 consecutive failures left state %v", st)
	}
}

func TestBreakerCooldownProbeAndClose(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	b.RecordFailure("a", "b", 0)
	if b.Allow("a", "b", 30*time.Second) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	// Past the cooldown: one probe goes through, concurrent attempts are
	// still rejected while it is in flight.
	if !b.Allow("a", "b", 2*time.Minute) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if st := b.State("a", "b"); st != BreakerHalfOpen {
		t.Fatalf("probe state = %v, want half-open", st)
	}
	if b.Allow("a", "b", 2*time.Minute) {
		t.Fatal("second attempt admitted while probe in flight")
	}
	b.RecordSuccess("a", "b")
	if st := b.State("a", "b"); st != BreakerClosed {
		t.Fatalf("probe success left state %v", st)
	}
	st := b.Stats()
	if st.Probes != 1 || st.Closes != 1 || st.ShortCircuits != 2 {
		t.Fatalf("stats = %+v, want 1 probe, 1 close, 2 short-circuits", st)
	}
	if pairs := b.OpenPairs(); len(pairs) != 0 {
		t.Fatalf("closed breaker listed as open: %v", pairs)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	b.RecordFailure("a", "b", 0)
	if !b.Allow("a", "b", time.Minute) {
		t.Fatal("no probe after cooldown")
	}
	b.RecordFailure("a", "b", time.Minute)
	if st := b.State("a", "b"); st != BreakerOpen {
		t.Fatalf("probe failure left state %v, want open", st)
	}
	if st := b.Stats(); st.Reopens != 1 {
		t.Fatalf("Reopens = %d, want 1", st.Reopens)
	}
	// The cooldown restarts from the reopen instant.
	if b.Allow("a", "b", time.Minute+30*time.Second) {
		t.Fatal("reopened breaker admitted a request before the fresh cooldown elapsed")
	}
	if pairs := b.OpenPairs(); len(pairs) != 1 || pairs[0] != "a→b" {
		t.Fatalf("OpenPairs = %v", pairs)
	}
}

func TestWatchdogDeadlineAndStats(t *testing.T) {
	if w := NewWatchdog(WatchdogConfig{Factor: 1}); w != nil {
		t.Fatal("factor 1 should disable the watchdog")
	}
	var nilW *Watchdog
	if d := nilW.Deadline(time.Second); d != time.Second {
		t.Fatalf("nil watchdog deadline = %v", d)
	}
	nilW.Lease(1, time.Second) // must not panic
	nilW.Complete(1)
	nilW.Expire(1)

	w := NewWatchdog(WatchdogConfig{Factor: 2.5})
	if d := w.Deadline(2 * time.Second); d != 5*time.Second {
		t.Fatalf("deadline = %v, want 5s", d)
	}
	w.Lease(1, time.Second)
	w.Lease(1, 2*time.Second) // renewal, not a second issue
	w.Lease(2, time.Second)
	if got := w.Active(); got != 2 {
		t.Fatalf("active leases = %d, want 2", got)
	}
	w.Complete(1)
	w.Expire(2)
	w.Expire(2) // double-expire is a no-op
	st := w.Stats()
	if st.LeasesIssued != 2 || st.LeasesCompleted != 1 || st.LeasesExpired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if w.Active() != 0 {
		t.Fatal("leases leaked")
	}
}

func checkpointFixture() *Checkpoint {
	return &Checkpoint{
		Cluster: ClusterState{
			ClockNS: int64(3 * time.Minute),
			Nodes: []NodeState{{
				ID: 0, NextID: 2,
				Containers: []ContainerState{{ID: 0, Function: "resnet18-imagenet", LastDoneNS: int64(time.Minute)}},
			}},
		},
		Metrics: MetricsState{
			Records: []metrics.Record{{Function: "resnet18-imagenet", End: time.Second}},
			Faults:  metrics.FaultStats{Crashes: 1},
		},
		Shed: 4,
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	want := checkpointFixture()
	if err := Save(path, want, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != CheckpointVersion {
		t.Fatalf("version = %d", got.Version)
	}
	if got.Shed != 4 || got.Metrics.Faults.Crashes != 1 || len(got.Metrics.Records) != 1 {
		t.Fatalf("round trip lost state: %+v", got)
	}
	if len(got.Cluster.Nodes) != 1 || got.Cluster.Nodes[0].Containers[0].Function != "resnet18-imagenet" {
		t.Fatalf("cluster state lost: %+v", got.Cluster)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the checkpoint", len(entries))
	}
}

func TestCheckpointLoadRejectsCorruptAndMismatched(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(corrupt); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
	versioned := filepath.Join(dir, "versioned.json")
	if err := os.WriteFile(versioned, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(versioned); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error = %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing checkpoint loaded")
	}
}

func TestCheckpointInjectedWriteFaultKeepsPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := Save(path, checkpointFixture(), nil); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1, faults.Rates{CheckpointWrite: 1})
	updated := checkpointFixture()
	updated.Shed = 99
	if err := Save(path, updated, inj); err == nil {
		t.Fatal("rate-1 checkpoint-write fault did not fail the save")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save corrupted the previous checkpoint")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed save left temp files: %d entries", len(entries))
	}
}
