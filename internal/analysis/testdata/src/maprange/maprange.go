// Package maprange is the fixture for the maprange checker: accumulating
// into a slice, writing records, or emitting output in map-iteration order
// must be reported unless a deterministic sort of the accumulator follows;
// order-independent map writes and slice iteration must stay silent.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside map iteration`
	}
	return out
}

func goodSortedAppend(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type collector struct{ records []int }

func (c *collector) Add(v int)     { c.records = append(c.records, v) }
func (c *collector) Observe(v int) { c.records = append(c.records, v) }

func badRecordSink(m map[string]int, c *collector) {
	for _, v := range m {
		c.Add(v) // want `Add inside map iteration writes records`
	}
}

func badEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration emits`
	}
}

func goodSortedSink(m map[string]int, c *collector) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.Observe(m[k])
	}
}

func goodMapWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodWaitGroup(m map[string]func()) {
	var wg sync.WaitGroup
	for _, f := range m {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

func goodSliceAppend(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
