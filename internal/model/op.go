// Package model defines the operation-graph representation of ML models used
// throughout Optimus.
//
// A model is a directed acyclic graph whose nodes are operations (convolution,
// dense, attention, activation, ...) and whose edges are dataflow. This is the
// granularity at which the paper's inter-function model transformation works:
// meta-operators rewrite individual operations and edges of the graph held in
// a warm container instead of loading a whole new model from scratch.
//
// The representation is deliberately structural: it carries operation types,
// shape properties and weight *identities* (not values), because every
// scheduling decision in the paper depends only on structure and weight sizes.
package model

import "fmt"

// OpType identifies the kind of an operation in a model graph.
type OpType uint8

// Operation types. The CNN types follow §3.2 of the paper (conv, pooling,
// activation, add, dense, batch-norm, ...); the transformer types follow §5.2
// (embedding; Query/Key/Value/Output with weights; Logit/Attend without).
const (
	OpInvalid OpType = iota

	// Structural endpoints.
	OpInput
	OpOutput

	// CNN operations.
	OpConv2D
	OpDepthwiseConv2D
	OpDense
	OpBatchNorm
	OpMaxPool
	OpAvgPool
	OpGlobalAvgPool
	OpAdd
	OpConcat
	OpFlatten
	OpDropout

	// Activations.
	OpReLU
	OpSigmoid
	OpTanh
	OpGELU
	OpSoftmax
	OpSwish

	// Transformer operations.
	OpEmbedding
	OpLayerNorm
	OpQuery
	OpKey
	OpValue
	OpAttnOutput
	OpLogit
	OpAttend

	// Recurrent operations (§7: the meta-operator interfaces cover CNN,
	// RNN and transformer models).
	OpLSTM
	OpGRU

	// Downstream-task head operations.
	OpCRF

	// Identity / zero ops (NAS-Bench-201 search space).
	OpIdentity
	OpZero

	opTypeCount // sentinel; keep last
)

var opTypeNames = [...]string{
	OpInvalid:         "invalid",
	OpInput:           "input",
	OpOutput:          "output",
	OpConv2D:          "conv2d",
	OpDepthwiseConv2D: "dwconv2d",
	OpDense:           "dense",
	OpBatchNorm:       "batchnorm",
	OpMaxPool:         "maxpool",
	OpAvgPool:         "avgpool",
	OpGlobalAvgPool:   "gavgpool",
	OpAdd:             "add",
	OpConcat:          "concat",
	OpFlatten:         "flatten",
	OpDropout:         "dropout",
	OpReLU:            "relu",
	OpSigmoid:         "sigmoid",
	OpTanh:            "tanh",
	OpGELU:            "gelu",
	OpSoftmax:         "softmax",
	OpSwish:           "swish",
	OpEmbedding:       "embedding",
	OpLayerNorm:       "layernorm",
	OpQuery:           "query",
	OpKey:             "key",
	OpValue:           "value",
	OpAttnOutput:      "attnoutput",
	OpLogit:           "logit",
	OpAttend:          "attend",
	OpLSTM:            "lstm",
	OpGRU:             "gru",
	OpCRF:             "crf",
	OpIdentity:        "identity",
	OpZero:            "zero",
}

// String returns the canonical lower-case name of the operation type.
func (t OpType) String() string {
	if int(t) < len(opTypeNames) && opTypeNames[t] != "" {
		return opTypeNames[t]
	}
	return fmt.Sprintf("optype(%d)", uint8(t))
}

// Valid reports whether t is a defined operation type.
func (t OpType) Valid() bool {
	return t > OpInvalid && t < opTypeCount
}

// OpTypeFromString returns the OpType whose String() equals s.
func OpTypeFromString(s string) (OpType, error) {
	for t := OpType(1); t < opTypeCount; t++ {
		if opTypeNames[t] == s {
			return t, nil
		}
	}
	return OpInvalid, fmt.Errorf("model: unknown op type %q", s)
}

// HasWeights reports whether operations of this type carry trained weights.
// Per the paper's Insight in §3.2, weighted operations (conv, dense, Q/K/V/O,
// embedding, norm scales, CRF) load much more slowly than weight-free ones
// (activation, pooling, add, logit, attend).
func (t OpType) HasWeights() bool {
	switch t {
	case OpConv2D, OpDepthwiseConv2D, OpDense, OpBatchNorm, OpLayerNorm,
		OpEmbedding, OpQuery, OpKey, OpValue, OpAttnOutput, OpCRF,
		OpLSTM, OpGRU:
		return true
	}
	return false
}

// IsActivation reports whether t is a pointwise activation.
func (t OpType) IsActivation() bool {
	switch t {
	case OpReLU, OpSigmoid, OpTanh, OpGELU, OpSoftmax, OpSwish:
		return true
	}
	return false
}

// IsTransformer reports whether t appears only in transformer models.
func (t OpType) IsTransformer() bool {
	switch t {
	case OpEmbedding, OpQuery, OpKey, OpValue, OpAttnOutput, OpLogit, OpAttend:
		return true
	}
	return false
}

// AllOpTypes returns every defined operation type in declaration order.
func AllOpTypes() []OpType {
	out := make([]OpType, 0, int(opTypeCount)-1)
	for t := OpType(1); t < opTypeCount; t++ {
		out = append(out, t)
	}
	return out
}

// Shape carries the size properties of an operation. Field meaning depends on
// the operation type:
//
//   - Conv2D / DepthwiseConv2D / pooling: KernelH×KernelW kernel, InChannels →
//     OutChannels, Stride.
//   - Dense / Query / Key / Value / AttnOutput: InChannels → OutChannels units.
//   - BatchNorm / LayerNorm / activations / Add: OutChannels is the feature
//     width the op is applied over.
//   - Embedding: InChannels is the vocabulary size, OutChannels the hidden dim.
//   - CRF: OutChannels is the tag count (transition matrix is Out×Out).
//
// Unused fields are zero.
type Shape struct {
	KernelH     int
	KernelW     int
	InChannels  int
	OutChannels int
	Stride      int
}

// String renders the shape compactly, e.g. "3x3,64->128,s2" for a conv.
func (s Shape) String() string {
	switch {
	case s.KernelH > 0 && s.Stride > 1:
		return fmt.Sprintf("%dx%d,%d->%d,s%d", s.KernelH, s.KernelW, s.InChannels, s.OutChannels, s.Stride)
	case s.KernelH > 0:
		return fmt.Sprintf("%dx%d,%d->%d", s.KernelH, s.KernelW, s.InChannels, s.OutChannels)
	case s.InChannels > 0 || s.OutChannels > 0:
		return fmt.Sprintf("%d->%d", s.InChannels, s.OutChannels)
	default:
		return "scalar"
	}
}

// Operation is a node in a model graph.
type Operation struct {
	// ID is the operation's identifier, unique within its graph. IDs are
	// dense indexes assigned by Graph.AddOp.
	ID int
	// Name is a human-readable layer name such as "conv2_1" or "blk3.query".
	Name string
	// Type is the operation kind.
	Type OpType
	// Shape carries the operation's size properties.
	Shape Shape
	// WeightsID identifies the trained weight tensor held by this operation.
	// Two operations with equal Type, Shape and WeightsID are bit-identical
	// (this is the sharing condition used by the Tetris baseline). Zero for
	// weight-free operations.
	WeightsID uint64
}

// WeightCount returns the number of scalar parameters the operation holds.
func (o *Operation) WeightCount() int64 {
	s := o.Shape
	switch o.Type {
	case OpConv2D:
		return int64(s.KernelH)*int64(s.KernelW)*int64(s.InChannels)*int64(s.OutChannels) + int64(s.OutChannels)
	case OpDepthwiseConv2D:
		return int64(s.KernelH)*int64(s.KernelW)*int64(s.InChannels) + int64(s.InChannels)
	case OpDense, OpQuery, OpKey, OpValue, OpAttnOutput:
		return int64(s.InChannels)*int64(s.OutChannels) + int64(s.OutChannels)
	case OpBatchNorm:
		return 4 * int64(s.OutChannels) // gamma, beta, moving mean, moving var
	case OpLayerNorm:
		return 2 * int64(s.OutChannels) // gamma, beta
	case OpEmbedding:
		return int64(s.InChannels) * int64(s.OutChannels)
	case OpLSTM:
		// Four gates: W_x (in×h), W_h (h×h) and bias per gate.
		h := int64(s.OutChannels)
		return 4 * (int64(s.InChannels)*h + h*h + h)
	case OpGRU:
		// Three gates.
		h := int64(s.OutChannels)
		return 3 * (int64(s.InChannels)*h + h*h + h)
	case OpCRF:
		return int64(s.OutChannels) * int64(s.OutChannels)
	default:
		return 0
	}
}

// WeightBytes returns the serialized size of the operation's weights assuming
// float32 storage, matching the HDF5 files the paper's prototype ships.
func (o *Operation) WeightBytes() int64 { return 4 * o.WeightCount() }

// HasWeights reports whether the operation carries trained weights.
func (o *Operation) HasWeights() bool { return o.Type.HasWeights() }

// SameStructure reports whether two operations have identical type and shape
// (weights may differ). This is the condition under which the Replace
// meta-operator alone suffices to transform o into other.
func (o *Operation) SameStructure(other *Operation) bool {
	return o.Type == other.Type && o.Shape == other.Shape
}

// Identical reports whether two operations have identical type, shape and
// weights identity — the Tetris sharing condition.
func (o *Operation) Identical(other *Operation) bool {
	return o.SameStructure(other) && o.WeightsID == other.WeightsID
}

// String renders the operation for debugging.
func (o *Operation) String() string {
	return fmt.Sprintf("#%d %s[%s %s]", o.ID, o.Name, o.Type, o.Shape)
}
