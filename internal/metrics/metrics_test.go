package metrics

import (
	"math"
	"testing"
	"time"
)

func rec(fn string, kind StartKind, arrival, latency time.Duration) Record {
	return Record{
		Function: fn, Kind: kind,
		Arrival: arrival, Start: arrival, End: arrival + latency,
		Compute: latency,
	}
}

func TestStartKindString(t *testing.T) {
	if StartWarm.String() != "warm" || StartTransform.String() != "transform" || StartCold.String() != "cold" {
		t.Error("kind names wrong")
	}
	if StartFallback.String() != "fallback" {
		t.Error("fallback kind name wrong")
	}
	if StartKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestFaultStats(t *testing.T) {
	var c Collector
	if c.Faults.Any() {
		t.Error("fresh collector reports faults")
	}
	c.Faults.Crashes++
	c.Faults.Retries++
	if !c.Faults.Any() {
		t.Error("recorded faults not reported")
	}
	c.Add(rec("f", StartFallback, 0, time.Second))
	if c.KindFractions()[StartFallback] != 1 {
		t.Errorf("fallback fraction = %v", c.KindFractions())
	}
}

func TestMeanLatency(t *testing.T) {
	var c Collector
	if c.MeanLatency() != 0 {
		t.Error("empty collector mean should be 0")
	}
	c.Add(rec("a", StartWarm, 0, 100*time.Millisecond))
	c.Add(rec("a", StartCold, time.Second, 300*time.Millisecond))
	if got := c.MeanLatency(); got != 200*time.Millisecond {
		t.Errorf("MeanLatency = %v, want 200ms", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLatencyIncludesWait(t *testing.T) {
	r := Record{Arrival: time.Second, Start: 3 * time.Second, End: 4 * time.Second}
	if r.Latency() != 3*time.Second {
		t.Errorf("Latency = %v, want 3s (includes queueing)", r.Latency())
	}
}

func TestPercentile(t *testing.T) {
	var c Collector
	if c.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
	for i := 1; i <= 100; i++ {
		c.Add(rec("f", StartWarm, 0, time.Duration(i)*time.Millisecond))
	}
	if got := c.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
	if got := c.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v", got)
	}
	if got := c.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	if got := c.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("P0 = %v", got)
	}
}

func TestKindCountsAndFractions(t *testing.T) {
	var c Collector
	if len(c.KindFractions()) != 0 {
		t.Error("empty fractions should be empty")
	}
	c.Add(rec("a", StartWarm, 0, time.Millisecond))
	c.Add(rec("a", StartWarm, 0, time.Millisecond))
	c.Add(rec("a", StartCold, 0, time.Millisecond))
	c.Add(rec("a", StartTransform, 0, time.Millisecond))
	counts := c.KindCounts()
	if counts[StartWarm] != 2 || counts[StartCold] != 1 || counts[StartTransform] != 1 {
		t.Errorf("counts = %v", counts)
	}
	fr := c.KindFractions()
	if math.Abs(fr[StartWarm]-0.5) > 1e-9 {
		t.Errorf("warm fraction = %v", fr[StartWarm])
	}
}

func TestMeanBreakdown(t *testing.T) {
	var c Collector
	c.Add(Record{Wait: 2 * time.Second, Init: time.Second, Load: 4 * time.Second, Compute: time.Second})
	c.Add(Record{Wait: 0, Init: time.Second, Load: 2 * time.Second, Compute: 3 * time.Second})
	b := c.MeanBreakdown()
	if b.Wait != time.Second || b.Init != time.Second || b.Load != 3*time.Second || b.Compute != 2*time.Second {
		t.Errorf("breakdown = %+v", b)
	}
	if b.Total() != 7*time.Second {
		t.Errorf("total = %v", b.Total())
	}
}

func TestPerFunction(t *testing.T) {
	var c Collector
	c.Add(rec("a", StartWarm, 0, time.Millisecond))
	c.Add(rec("b", StartCold, 0, 2*time.Millisecond))
	c.Add(rec("a", StartCold, 0, 3*time.Millisecond))
	per := c.PerFunction()
	if len(per) != 2 || per["a"].Len() != 2 || per["b"].Len() != 1 {
		t.Errorf("PerFunction split wrong")
	}
}

func TestCorr(t *testing.T) {
	up := []float64{1, 2, 3, 4, 5}
	down := []float64{5, 4, 3, 2, 1}
	if got := Corr(up, up); math.Abs(got-1) > 1e-9 {
		t.Errorf("Corr(x,x) = %v", got)
	}
	if got := Corr(up, down); math.Abs(got+1) > 1e-9 {
		t.Errorf("Corr(up,down) = %v", got)
	}
	flat := []float64{2, 2, 2, 2, 2}
	if got := Corr(up, flat); got != 0 {
		t.Errorf("zero-variance Corr = %v", got)
	}
	if got := Corr(up, []float64{1, 2}); got != 0 {
		t.Errorf("length-mismatch Corr = %v", got)
	}
	if got := Corr(nil, nil); got != 0 {
		t.Errorf("empty Corr = %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSummarizeDurations(t *testing.T) {
	st := SummarizeDurations(nil)
	if st.Count != 0 || st.Mean != 0 {
		t.Error("empty summary wrong")
	}
	st = SummarizeDurations([]time.Duration{3 * time.Second, time.Second, 2 * time.Second})
	if st.Count != 3 || st.Min != time.Second || st.Max != 3*time.Second || st.Mean != 2*time.Second {
		t.Errorf("summary = %+v", st)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 10)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	h.Observe(-time.Second)           // clamped into bucket 0
	h.Observe(500 * time.Millisecond) // overflow
	if h.Count() != 102 {
		t.Fatalf("Count = %d", h.Count())
	}
	// 100ms lands exactly on the grid end and overflows alongside 500ms.
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d", h.Overflow)
	}
	if h.Buckets[0] != 10 { // 1..9 ms plus the clamped negative
		t.Errorf("bucket 0 = %d", h.Buckets[0])
	}
	// Median of ~uniform 1..100ms lands near 50ms (bucket resolution 10ms).
	if q := h.Quantile(0.5); q < 40*time.Millisecond || q > 60*time.Millisecond {
		t.Errorf("median = %v", q)
	}
	if q := h.Quantile(1.0); q != 100*time.Millisecond {
		t.Errorf("max quantile = %v", q)
	}
	if q := h.Quantile(-1); q <= 0 {
		t.Errorf("clamped quantile = %v", q)
	}
	// Empty histogram.
	if NewHistogram(0, 0).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestLatencyHistogram(t *testing.T) {
	var c Collector
	c.Add(rec("a", StartWarm, 0, 5*time.Millisecond))
	c.Add(rec("a", StartCold, 0, 95*time.Millisecond))
	h := c.LatencyHistogram(10*time.Millisecond, 10)
	if h.Count() != 2 || h.Buckets[0] != 1 || h.Buckets[9] != 1 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestPercentileCacheInvalidation(t *testing.T) {
	var c Collector
	c.Add(rec("f", StartWarm, 0, 10*time.Millisecond))
	if got := c.Percentile(100); got != 10*time.Millisecond {
		t.Fatalf("P100 = %v, want 10ms", got)
	}
	// A later Add must invalidate the cached sorted view.
	c.Add(rec("f", StartWarm, 0, 40*time.Millisecond))
	if got := c.Percentile(100); got != 40*time.Millisecond {
		t.Errorf("P100 after Add = %v, want 40ms (stale sort cache?)", got)
	}
	if got := c.Percentile(50); got != 10*time.Millisecond {
		t.Errorf("P50 after Add = %v, want 10ms", got)
	}
}

func TestPercentileAfterRestoreFrom(t *testing.T) {
	var c Collector
	for i := 1; i <= 10; i++ {
		c.Add(rec("f", StartWarm, 0, time.Duration(i)*time.Second))
	}
	// Warm the sorted-view cache, then replace contents wholesale.
	_ = c.Percentile(50)

	restored := []Record{
		rec("g", StartCold, 0, 100*time.Millisecond),
		rec("g", StartTransform, 0, 300*time.Millisecond),
		rec("g", StartCold, 0, 200*time.Millisecond),
	}
	c.RestoreFrom(restored, FaultStats{Crashes: 2})

	if got := c.Percentile(100); got != 300*time.Millisecond {
		t.Errorf("P100 after restore = %v, want 300ms", got)
	}
	if got := c.Percentile(50); got != 200*time.Millisecond {
		t.Errorf("P50 after restore = %v, want 200ms", got)
	}
	if got := c.MeanLatency(); got != 200*time.Millisecond {
		t.Errorf("mean after restore = %v, want 200ms", got)
	}
	counts := c.KindCounts()
	if counts[StartCold] != 2 || counts[StartTransform] != 1 || len(counts) != 2 {
		t.Errorf("counts after restore = %v", counts)
	}
	if c.Faults.Crashes != 2 {
		t.Errorf("faults after restore = %+v", c.Faults)
	}
}

func TestPercentilesSharedSort(t *testing.T) {
	var c Collector
	if got := c.Percentiles(50, 99); got[0] != 0 || got[1] != 0 {
		t.Error("empty Percentiles should be zeros")
	}
	for i := 1; i <= 100; i++ {
		c.Add(rec("f", StartWarm, 0, time.Duration(i)*time.Millisecond))
	}
	got := c.Percentiles(50, 95, 99)
	want := []time.Duration{50 * time.Millisecond, 95 * time.Millisecond, 99 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuickMatchesSlowPath(t *testing.T) {
	var c Collector
	if q := c.Quick(); q.Requests != 0 || q.Mean != 0 || q.P50 != 0 || q.P99 != 0 {
		t.Errorf("empty Quick = %+v, want zeros", c.Quick())
	}
	for i := 1; i <= 200; i++ {
		k := StartWarm
		switch {
		case i%7 == 0:
			k = StartCold
		case i%3 == 0:
			k = StartTransform
		}
		c.Add(rec("f", k, 0, time.Duration(i)*time.Millisecond))
	}
	q := c.Quick()
	if q.Requests != c.Len() || q.Mean != c.MeanLatency() ||
		q.P50 != c.Percentile(50) || q.P99 != c.Percentile(99) {
		t.Errorf("Quick aggregate mismatch: %+v", q)
	}
	fr := c.KindFractions()
	for k, want := range fr {
		if got := q.Fraction(k); got != want {
			t.Errorf("Fraction(%v) = %v, want %v", k, got, want)
		}
	}
	if q.Fraction(startKindCount) != 0 {
		t.Error("out-of-range Fraction should be 0")
	}
}

// TestQuickAllocFree is the stats-path regression bound: once the sorted
// cache is warm (one read after the last Add), Quick must not allocate — the
// /api/stats handler builds its summary from it on every poll.
func TestQuickAllocFree(t *testing.T) {
	var c Collector
	for i := 0; i < 5000; i++ {
		c.Add(rec("f", StartKind(i%int(startKindCount)), 0, time.Duration(i)*time.Microsecond))
	}
	c.Quick() // warm the sorted-latency cache
	if avg := testing.AllocsPerRun(100, func() {
		q := c.Quick()
		if q.Requests != 5000 {
			t.Fatal("bad request count")
		}
	}); avg != 0 {
		t.Errorf("Quick allocates %.1f objects/call on a warm cache, want 0", avg)
	}
}
