package simulate_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
)

// chaosTrace is a shared medium-sized workload for the fault tests.
func chaosTrace(t *testing.T) ([]*simulate.Function, *workload.Trace) {
	t.Helper()
	names := []string{"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "vgg16-imagenet"}
	return testFunctions(t, names...), workload.MixedPoisson(names, 12*time.Hour, 11)
}

func TestZeroRatesLeaveNoFaultTraces(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Faults.Any() {
		t.Errorf("healthy run tallied faults: %+v", col.Faults)
	}
	for _, r := range col.Records() {
		if r.Kind == metrics.StartFallback {
			t.Fatal("healthy run produced a fallback start")
		}
		if r.Retries != 0 {
			t.Fatalf("healthy run recorded retries: %+v", r)
		}
	}
}

func TestTransformFaultFallsBack(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 2,
		Faults: faults.Rates{Transform: 1},
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != tr.Len() {
		t.Fatalf("served %d of %d", col.Len(), tr.Len())
	}
	fr := col.KindFractions()
	if fr[metrics.StartTransform] != 0 {
		t.Error("rate-1 transform faults left transform records")
	}
	if fr[metrics.StartFallback] == 0 {
		t.Fatal("no fallback records despite rate-1 transform faults")
	}
	if col.Faults.TransformFallbacks == 0 {
		t.Error("TransformFallbacks not tallied")
	}
	if col.Faults.TransformFallbacks != sim.TransformsFailed {
		t.Errorf("counter mismatch: FaultStats %d vs TransformsFailed %d",
			col.Faults.TransformFallbacks, sim.TransformsFailed)
	}
}

// TestLegacyRateFoldsIntoInjector: the deprecated TransformFailureRate knob
// must behave exactly like Faults.Transform so old callers see no change.
func TestLegacyRateFoldsIntoInjector(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(cfg simulate.Config) *metrics.Collector {
		cfg.Policy = policy.Optimus{}
		cfg.Nodes = 1
		cfg.ContainersPerNode = 2
		col, err := simulate.New(cfg, fns).Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	old := run(simulate.Config{TransformFailureRate: 0.5})
	fresh := run(simulate.Config{Faults: faults.Rates{Transform: 0.5}})
	if old.MeanLatency() != fresh.MeanLatency() || !reflect.DeepEqual(old.Faults, fresh.Faults) {
		t.Errorf("legacy knob diverged: %v/%+v vs %v/%+v",
			old.MeanLatency(), old.Faults, fresh.MeanLatency(), fresh.Faults)
	}
}

func TestLoadFaultSlowsColdStarts(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func(r float64) *metrics.Collector {
		sim := simulate.New(simulate.Config{
			Policy: policy.OpenWhisk{}, Nodes: 1, ContainersPerNode: 2,
			Faults: faults.Rates{Load: r},
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	healthy, faulty := run(0), run(1)
	if faulty.Faults.LoadRetries == 0 {
		t.Fatal("rate-1 load faults tallied no retries")
	}
	if faulty.MeanLatency() <= healthy.MeanLatency() {
		t.Errorf("load faults did not slow the run: %v vs %v",
			faulty.MeanLatency(), healthy.MeanLatency())
	}
	// Load faults degrade but never lose requests.
	if faulty.Len() != tr.Len() {
		t.Errorf("served %d of %d", faulty.Len(), tr.Len())
	}
}

func TestCrashRetriesBoundedAndRecorded(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2,
		Faults: faults.Rates{Crash: 0.2},
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Faults.Crashes == 0 || col.Faults.Retries == 0 {
		t.Fatalf("crash faults not exercised: %+v", col.Faults)
	}
	if col.Len()+col.Faults.Dropped != tr.Len() {
		t.Errorf("served %d + dropped %d != %d requests",
			col.Len(), col.Faults.Dropped, tr.Len())
	}
	retried := 0
	for _, r := range col.Records() {
		if r.Retries > 2 {
			t.Fatalf("record exceeded the retry budget: %+v", r)
		}
		if r.Retries > 0 {
			retried++
			if r.Wait == 0 && r.Start == r.Arrival {
				t.Errorf("retried request shows no wasted time: %+v", r)
			}
		}
	}
	if retried == 0 {
		t.Error("no record carries a retry count")
	}
}

func TestCrashWithoutBudgetDropsEverything(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet")
	tr := workload.Poisson([]string{"resnet18-imagenet"}, 0.001, time.Hour, 5)
	sim := simulate.New(simulate.Config{
		Policy: policy.OpenWhisk{}, Nodes: 1, ContainersPerNode: 1,
		Faults:     faults.Rates{Crash: 1},
		MaxRetries: -1,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 0 {
		t.Errorf("rate-1 crashes with no retries still served %d requests", col.Len())
	}
	if col.Faults.Dropped != tr.Len() {
		t.Errorf("dropped %d of %d", col.Faults.Dropped, tr.Len())
	}
}

func TestOutagesRerouteAndRecover(t *testing.T) {
	fns, tr := chaosTrace(t)
	sim := simulate.New(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2,
		Faults: faults.Rates{Outage: 0.02},
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Faults.Outages == 0 {
		t.Fatal("no outages injected")
	}
	// Outages lose containers and delay requests but never lose requests:
	// crash faults are off, so nothing may be dropped.
	if col.Faults.Dropped != 0 {
		t.Errorf("outage-only run dropped %d requests", col.Faults.Dropped)
	}
	if col.Len() != tr.Len() {
		t.Errorf("served %d of %d", col.Len(), tr.Len())
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	fns, tr := chaosTrace(t)
	run := func() *metrics.Collector {
		sim := simulate.New(simulate.Config{
			Policy: policy.Optimus{}, Nodes: 2, ContainersPerNode: 2,
			Seed:   9,
			Faults: faults.Rates{Transform: 0.3, Load: 0.2, Crash: 0.05, Outage: 0.01},
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	a, b := run(), run()
	if a.MeanLatency() != b.MeanLatency() || !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Errorf("fault runs diverged: %v/%+v vs %v/%+v",
			a.MeanLatency(), a.Faults, b.MeanLatency(), b.Faults)
	}
}

func TestOnlineTransformFaultFallsBack(t *testing.T) {
	o := simulate.NewOnline(simulate.Config{
		Policy: policy.Optimus{}, Nodes: 1, ContainersPerNode: 1,
		Faults: faults.Rates{Transform: 1},
	}, testFunctions(t, "resnet18-imagenet", "resnet34-imagenet"))
	if _, err := o.Invoke("resnet18-imagenet", 0); err != nil {
		t.Fatal(err)
	}
	// 2 min later the resnet18 container is idle past the threshold on a full
	// node: Optimus picks a transform, the injector aborts it mid-flight.
	rec, err := o.Invoke("resnet34-imagenet", 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != metrics.StartFallback {
		t.Fatalf("kind = %v, want fallback", rec.Kind)
	}
	var fallbacks int
	o.ReadCollector(func(col *metrics.Collector) { fallbacks = col.Faults.TransformFallbacks })
	if fallbacks != 1 {
		t.Errorf("TransformFallbacks = %d", fallbacks)
	}
}

func TestOnlineCrashExhaustsBudget(t *testing.T) {
	o := simulate.NewOnline(simulate.Config{
		Policy: policy.OpenWhisk{}, Nodes: 1, ContainersPerNode: 1,
		Faults:     faults.Rates{Crash: 1},
		MaxRetries: -1,
	}, testFunctions(t, "resnet18-imagenet"))
	_, err := o.Invoke("resnet18-imagenet", 0)
	if !errors.Is(err, simulate.ErrRequestDropped) {
		t.Fatalf("err = %v, want ErrRequestDropped", err)
	}
	var fs metrics.FaultStats
	o.ReadCollector(func(col *metrics.Collector) { fs = col.Faults })
	if fs.Dropped != 1 || fs.Crashes != 1 {
		t.Errorf("fault stats = %+v", fs)
	}
}

func TestOnlineOutageDelaysRequest(t *testing.T) {
	o := simulate.NewOnline(simulate.Config{
		Policy: policy.OpenWhisk{}, Nodes: 1, ContainersPerNode: 1,
		Faults:         faults.Rates{Outage: 1},
		OutageDuration: 5 * time.Second,
	}, testFunctions(t, "resnet18-imagenet"))
	rec, err := o.Invoke("resnet18-imagenet", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Wait < 5*time.Second {
		t.Errorf("request did not wait out the outage: wait %v", rec.Wait)
	}
	var outages int
	o.ReadCollector(func(col *metrics.Collector) { outages = col.Faults.Outages })
	if outages != 1 {
		t.Errorf("Outages = %d", outages)
	}
}
