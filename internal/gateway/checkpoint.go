package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/supervisor"
)

// Checkpoint snapshots the gateway's durable state: registered model
// manifests, the simulated cluster, the metrics history, and the hardening
// counters.
func (g *Gateway) Checkpoint() (*supervisor.Checkpoint, error) {
	g.mu.Lock()
	models := make([]*model.Graph, 0, len(g.models))
	for _, m := range g.models {
		models = append(models, m)
	}
	g.mu.Unlock()
	cp := &supervisor.Checkpoint{
		Shed:   g.shed.Load(),
		Panics: g.panics.Load(),
	}
	// Stable model order keeps same-state checkpoints byte-identical.
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	for _, m := range models {
		raw, err := json.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("gateway: marshal model %s: %w", m.Name, err)
		}
		cp.Models = append(cp.Models, raw)
	}
	cp.Cluster = g.online.ExportState()
	g.online.ReadCollector(func(col *metrics.Collector) {
		cp.Metrics.Records = append([]metrics.Record(nil), col.Records()...)
		cp.Metrics.Faults = col.Faults
	})
	return cp, nil
}

// SaveCheckpoint writes the gateway's state atomically to the configured
// checkpoint path (a no-op when no path is configured). Failed writes —
// including deterministically injected checkpoint-write faults — leave any
// previous checkpoint intact and are tallied, not fatal.
func (g *Gateway) SaveCheckpoint() error {
	if g.ckptPath == "" {
		return nil
	}
	cp, err := g.Checkpoint()
	if err == nil {
		err = supervisor.Save(g.ckptPath, cp, g.ckptInj)
	}
	if err != nil {
		g.ckptFailures.Add(1)
		return err
	}
	g.ckptSaves.Add(1)
	return nil
}

// RestoreCheckpoint loads a checkpoint into the gateway: models are
// registered (names already present — e.g. preloaded from the repository —
// are kept as-is), the cluster state is imported with reconciliation, and
// the metrics history and hardening counters are restored. It returns the
// quarantined function names from reconciliation.
func (g *Gateway) RestoreCheckpoint(cp *supervisor.Checkpoint) ([]string, error) {
	restored := 0
	for _, raw := range cp.Models {
		var m model.Graph
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("gateway: checkpoint model: %w", err)
		}
		err := g.RegisterModel(&m)
		switch {
		case err == nil:
			restored++
		case errors.Is(err, ErrDuplicateModel):
			// Already live (repository preload); the running copy wins.
		default:
			return nil, fmt.Errorf("gateway: restore model %s: %w", m.Name, err)
		}
	}
	quarantined := g.online.ImportState(cp.Cluster)
	g.online.ReadCollector(func(col *metrics.Collector) {
		col.RestoreFrom(cp.Metrics.Records, cp.Metrics.Faults)
	})
	g.shed.Store(cp.Shed)
	g.panics.Store(cp.Panics)
	g.mu.Lock()
	g.restoredModels = restored
	g.restoredRecords = len(cp.Metrics.Records)
	g.quarantined = quarantined
	g.mu.Unlock()
	return quarantined, nil
}

// restoreFromDisk is New's startup path: load and restore the configured
// checkpoint if one exists. A missing file is a normal first boot; a corrupt
// or otherwise unreadable one logs a warning and falls back to a clean start
// instead of refusing to serve.
func (g *Gateway) restoreFromDisk() {
	cp, err := supervisor.Load(g.ckptPath)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("gateway: ignoring unusable checkpoint %s (starting clean): %v", g.ckptPath, err)
		}
		return
	}
	quarantined, err := g.RestoreCheckpoint(cp)
	if err != nil {
		log.Printf("gateway: checkpoint restore from %s failed (starting clean): %v", g.ckptPath, err)
		return
	}
	if len(quarantined) > 0 {
		log.Printf("gateway: quarantined containers for unregistered/unplaceable functions: %v", quarantined)
	}
}
