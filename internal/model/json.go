package model

import (
	"encoding/json"
	"fmt"
)

// The paper's prototype stores model structure information in JSON next to
// the HDF5 weight files (§7). This file provides the equivalent codec so
// models can be registered over the gateway's REST API and persisted.

type jsonOp struct {
	Name      string `json:"name"`
	Type      string `json:"type"`
	KernelH   int    `json:"kernel_h,omitempty"`
	KernelW   int    `json:"kernel_w,omitempty"`
	In        int    `json:"in,omitempty"`
	Out       int    `json:"out,omitempty"`
	Stride    int    `json:"stride,omitempty"`
	WeightsID uint64 `json:"weights_id,omitempty"`
}

type jsonGraph struct {
	Name   string   `json:"name"`
	Family string   `json:"family"`
	Ops    []jsonOp `json:"ops"`
	Edges  [][2]int `json:"edges"`
}

// MarshalJSON encodes the graph in the on-disk structure format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Family: g.Family, Ops: make([]jsonOp, len(g.ops))}
	for i, op := range g.ops {
		jg.Ops[i] = jsonOp{
			Name:      op.Name,
			Type:      op.Type.String(),
			KernelH:   op.Shape.KernelH,
			KernelW:   op.Shape.KernelW,
			In:        op.Shape.InChannels,
			Out:       op.Shape.OutChannels,
			Stride:    op.Shape.Stride,
			WeightsID: op.WeightsID,
		}
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, [2]int{e.From, e.To})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph from the on-disk structure format and
// validates it.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("model: decoding graph: %w", err)
	}
	ng := NewGraph(jg.Name, jg.Family)
	for _, jo := range jg.Ops {
		t, err := OpTypeFromString(jo.Type)
		if err != nil {
			return err
		}
		ng.AddOp(Operation{
			Name: jo.Name,
			Type: t,
			Shape: Shape{
				KernelH: jo.KernelH, KernelW: jo.KernelW,
				InChannels: jo.In, OutChannels: jo.Out, Stride: jo.Stride,
			},
			WeightsID: jo.WeightsID,
		})
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= ng.NumOps() || e[1] < 0 || e[1] >= ng.NumOps() {
			return fmt.Errorf("model: graph %q edge %v out of range", jg.Name, e)
		}
		ng.Connect(e[0], e[1])
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}
