// Package wallclock_realtime is the corrected-side fixture for the
// wallclock checker: the identical wall-clock reads, loaded under a
// real-time (allowlisted) import path, must produce no findings.
package wallclock_realtime

import "time"

func uptime() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func throttle() {
	time.Sleep(time.Millisecond)
}
