package checkers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Lockorder builds the held-while-acquiring relation over the whole module
// — which abstract locks (receiver-type+field pairs) are held when others
// are acquired, following static calls through the call graph — and
// reports: (a) cycles in the acquisition order, the classic AB-BA deadlock,
// at the edge that closes the cycle; (b) calls made while holding a lock
// into functions that transitively re-acquire the same lock
// (self-deadlock through a helper); and (c) direct re-acquisition of a
// lock already held. Lock identities are instance-insensitive: every
// Tree.mu is one abstract lock, so sibling-instance locking (shard i then
// shard j) needs an //optimus:allow lockorder with the ordering argument
// that makes it safe.
type Lockorder struct {
	memo map[*analysis.CallGraph]map[string][]lockReport
}

// NewLockorder returns the checker.
func NewLockorder() *Lockorder {
	return &Lockorder{memo: make(map[*analysis.CallGraph]map[string][]lockReport)}
}

// Name implements analysis.Checker.
func (c *Lockorder) Name() string { return "lockorder" }

// Doc implements analysis.Checker.
func (c *Lockorder) Doc() string {
	return "reports lock-order cycles and calls that re-acquire a held mutex through the call graph"
}

// lockReport is one finding, attributed to the package whose source holds
// the reported position.
type lockReport struct {
	pos token.Pos
	msg string
}

// Run implements analysis.Checker. The module-wide analysis runs once per
// call graph and is memoized; each pass emits the findings belonging to its
// package.
func (c *Lockorder) Run(p *analysis.Pass) {
	if p.CallGraph == nil {
		return
	}
	byPkg, ok := c.memo[p.CallGraph]
	if !ok {
		byPkg = c.analyze(p.CallGraph)
		c.memo[p.CallGraph] = byPkg
	}
	for _, r := range byPkg[p.Path] {
		p.Reportf(c.Name(), r.pos, "%s", r.msg)
	}
}

// sumEntry is one lock a function may transitively acquire, with the call
// chain that reaches the acquisition (empty for direct acquisitions).
type sumEntry struct {
	op  lockOp
	via []string
}

// lockEvent is one held-context event from walking a function body: an
// acquisition or an outgoing call, with the locks held at that point.
type lockEvent struct {
	node *analysis.CallNode
	held []*heldLock
	// op is set for acquisition events.
	op lockOp
	// call/callee are set for call events.
	call   *ast.CallExpr
	callee *analysis.CallNode
}

// analyze walks every declared function once, computes transitive
// acquisition summaries, and processes the held-context events in
// deterministic order, growing the lock-order graph and collecting
// findings per package.
func (c *Lockorder) analyze(g *analysis.CallGraph) map[string][]lockReport {
	direct := make(map[*analysis.CallNode]map[string]lockOp)
	var events []lockEvent
	for _, node := range g.Nodes() {
		if node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		node := node
		acq := make(map[string]lockOp)
		direct[node] = acq
		w := &lockWalker{
			info: node.Info,
			onAcquire: func(op lockOp, st *lockState) {
				if _, ok := acq[op.key]; !ok {
					acq[op.key] = op
				}
				events = append(events, lockEvent{node: node, held: st.heldLocks(), op: op})
			},
			onCall: func(call *ast.CallExpr, st *lockState) {
				held := st.heldLocks()
				if len(held) == 0 {
					return
				}
				callee := g.Node(analysis.StaticCallee(node.Info, call))
				if callee == nil || callee.Decl == nil {
					return
				}
				events = append(events, lockEvent{node: node, held: held, call: call, callee: callee})
			},
		}
		w.walkFunc(node.Decl.Body)
	}

	summaries := make(map[*analysis.CallNode]acqSummary)
	for _, node := range g.Nodes() {
		if node.Decl != nil {
			c.summarize(node, direct, summaries, make(map[*analysis.CallNode]bool))
		}
	}

	byPkg := make(map[string][]lockReport)
	report := func(node *analysis.CallNode, pos token.Pos, format string, args ...any) {
		byPkg[node.Path] = append(byPkg[node.Path], lockReport{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	order := newOrderGraph()
	for _, ev := range events {
		if ev.call == nil {
			c.processAcquire(ev, order, report)
		} else {
			c.processCall(ev, summaries[ev.callee], order, report)
		}
	}
	return byPkg
}

// acqSummary maps lock key → how the function may acquire it.
type acqSummary map[string]*sumEntry

// summarize computes the transitive may-acquire set of node: its direct
// acquisitions plus those of every statically called function (go
// statements excluded — they acquire on another stack — and calls inside
// function literals excluded — the closure may never run here). The
// visiting set breaks recursion; a function on the current chain
// contributes what has been resolved so far.
func (c *Lockorder) summarize(node *analysis.CallNode, direct map[*analysis.CallNode]map[string]lockOp, summaries map[*analysis.CallNode]acqSummary, visiting map[*analysis.CallNode]bool) acqSummary {
	if s, ok := summaries[node]; ok {
		return s
	}
	if visiting[node] {
		return nil
	}
	visiting[node] = true
	defer delete(visiting, node)

	sum := make(acqSummary)
	keys := make([]string, 0, len(direct[node]))
	for k := range direct[node] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		op := direct[node][k]
		sum[k] = &sumEntry{op: op}
	}
	for _, site := range node.Out {
		if site.Kind == analysis.CallGo || site.InLiteral {
			continue
		}
		callee := site.Callee
		if callee.Decl == nil {
			continue
		}
		sub := c.summarize(callee, direct, summaries, visiting)
		subKeys := make([]string, 0, len(sub))
		for k := range sub {
			subKeys = append(subKeys, k)
		}
		sort.Strings(subKeys)
		for _, k := range subKeys {
			if _, ok := sum[k]; ok {
				continue
			}
			e := sub[k]
			via := make([]string, 0, len(e.via)+1)
			via = append(via, funcDisplay(callee.Func))
			via = append(via, e.via...)
			sum[k] = &sumEntry{op: e.op, via: via}
		}
	}
	summaries[node] = sum
	return sum
}

// processAcquire handles a direct acquisition: re-acquiring a held lock is
// a self-deadlock (read-read re-entry tolerated), and each held lock
// establishes a held→acquired order edge.
func (c *Lockorder) processAcquire(ev lockEvent, order *orderGraph, report func(*analysis.CallNode, token.Pos, string, ...any)) {
	for _, h := range ev.held {
		if h.op.key == ev.op.key {
			if h.op.read && ev.op.read {
				continue
			}
			report(ev.node, ev.op.Pos(),
				"mutex %s is acquired while already held by %s (self-deadlock)",
				ev.op.name, funcDisplay(ev.node.Func))
			continue
		}
		c.addEdge(order, h.op, ev.op, ev.node, ev.op.Pos(), report)
	}
}

// processCall handles a call made while holding locks: if the callee may
// transitively acquire a held lock, that is a deadlock through the call
// graph; every other lock the callee may acquire extends the order graph.
func (c *Lockorder) processCall(ev lockEvent, sum acqSummary, order *orderGraph, report func(*analysis.CallNode, token.Pos, string, ...any)) {
	if len(sum) == 0 {
		return
	}
	keys := make([]string, 0, len(sum))
	for k := range sum {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, h := range ev.held {
		for _, k := range keys {
			e := sum[k]
			if k == h.op.key {
				if h.op.read && e.op.read {
					continue
				}
				report(ev.node, ev.call.Pos(),
					"call to %s while holding %s: callee re-acquires %s%s (deadlock)",
					funcDisplay(ev.callee.Func), h.op.name, e.op.name, viaSuffix(e.via))
				continue
			}
			c.addEdge(order, h.op, e.op, ev.node, ev.call.Pos(), report)
		}
	}
}

// addEdge records held→acquired in the order graph; an edge whose reverse
// direction is already reachable closes an acquisition-order cycle.
func (c *Lockorder) addEdge(order *orderGraph, held, acq lockOp, node *analysis.CallNode, pos token.Pos, report func(*analysis.CallNode, token.Pos, string, ...any)) {
	if order.has(held.key, acq.key) {
		return
	}
	if chain := order.path(acq.key, held.key); chain != nil {
		names := make([]string, 0, len(chain)+1)
		for _, k := range chain {
			names = append(names, order.name(k))
		}
		names = append(names, acq.name)
		report(node, pos,
			"acquiring %s while holding %s completes a lock-order cycle: %s (deadlock with the reverse order)",
			acq.name, held.name, strings.Join(names, " → "))
	}
	order.add(held, acq)
}

// viaSuffix renders a call chain for a transitive acquisition.
func viaSuffix(via []string) string {
	if len(via) == 0 {
		return ""
	}
	return " via " + strings.Join(via, " → ")
}

// funcDisplay renders a function for messages: (*Tree).DonorLost for
// methods, pkg.Func for functions.
func funcDisplay(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := false
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
			ptr = true
		}
		if named, isNamed := rt.(*types.Named); isNamed {
			recv := named.Obj().Name()
			if ptr {
				recv = "*" + recv
			}
			return "(" + recv + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// orderGraph is the held-before relation over abstract locks, with
// reachability queries for cycle detection.
type orderGraph struct {
	adj   map[string]map[string]bool
	names map[string]string
}

func newOrderGraph() *orderGraph {
	return &orderGraph{adj: make(map[string]map[string]bool), names: make(map[string]string)}
}

func (o *orderGraph) has(from, to string) bool { return o.adj[from][to] }

func (o *orderGraph) add(held, acq lockOp) {
	if o.adj[held.key] == nil {
		o.adj[held.key] = make(map[string]bool)
	}
	o.adj[held.key][acq.key] = true
	o.names[held.key] = held.name
	o.names[acq.key] = acq.name
}

func (o *orderGraph) name(key string) string {
	if n, ok := o.names[key]; ok {
		return n
	}
	return key
}

// path returns the lock keys along a path from → to in the order graph
// (from included, to included), or nil when unreachable. Neighbors are
// visited in sorted order, so the witness path is deterministic.
func (o *orderGraph) path(from, to string) []string {
	if from == to {
		return []string{from}
	}
	visited := map[string]bool{from: true}
	var dfs func(cur string, acc []string) []string
	dfs = func(cur string, acc []string) []string {
		next := make([]string, 0, len(o.adj[cur]))
		for n := range o.adj[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if visited[n] {
				continue
			}
			visited[n] = true
			step := append(acc[:len(acc):len(acc)], n)
			if n == to {
				return step
			}
			if found := dfs(n, step); found != nil {
				return found
			}
		}
		return nil
	}
	return dfs(from, []string{from})
}
