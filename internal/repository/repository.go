// Package repository is the global model repository of §4.4 Module 3 / §7:
// models persist as JSON structure files in a directory (the role the
// paper's Docker volume of HDF + JSON files plays), with an index and
// transformation-plan precomputation on registration.
//
// The store is safe for concurrent use and survives process restarts: a
// gateway started over an existing directory reloads every model.
package repository

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/planner"
)

// Store is a directory-backed model repository.
type Store struct {
	dir string

	mu     sync.RWMutex
	models map[string]*model.Graph

	// plans, when configured with a planner, caches pairwise transformation
	// strategies as models register (§4.4 Module 3); pre fans the pairwise
	// planning across a bounded worker pool instead of blocking callers.
	pl    *planner.Planner
	plans *planner.Cache
	pre   *planner.Precomputer
}

// Open loads (or initializes) a repository at dir. If pl is non-nil, plans
// between all stored models are precomputed into Plans() in parallel across
// the worker pool before Open returns (the offline warm-up of §4.4).
func Open(dir string, pl *planner.Planner) (*Store, error) {
	return OpenWorkers(dir, pl, 0)
}

// OpenWorkers is Open with an explicit planning worker-pool bound
// (0 = GOMAXPROCS).
func OpenWorkers(dir string, pl *planner.Planner, workers int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repository: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:    dir,
		models: make(map[string]*model.Graph),
		pl:     pl,
		plans:  planner.NewCache(),
	}
	if pl != nil {
		s.pre = planner.NewPrecomputer(pl, s.plans, workers)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repository: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		g, err := s.loadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		s.models[g.Name] = g
	}
	if s.pre != nil {
		all := make([]*model.Graph, 0, len(s.models))
		for _, g := range s.models {
			all = append(all, g)
		}
		// Sorted so startup planning order (and thus LRU plan-cache
		// contents and telemetry) is identical across restarts.
		sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
		s.pre.PrecomputeAll(all)
	}
	return s, nil
}

func (s *Store) loadFile(path string) (*model.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("repository: reading %s: %w", path, err)
	}
	var g model.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("repository: decoding %s: %w", path, err)
	}
	return &g, nil
}

// fileFor sanitizes a model name into a filename.
func (s *Store) fileFor(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	return filepath.Join(s.dir, safe+".json")
}

// Put persists a model and precomputes plans against the existing catalog.
// Duplicate names are rejected.
func (s *Store) Put(g *model.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if _, dup := s.models[g.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("repository: model %q already stored", g.Name)
	}
	s.models[g.Name] = g
	others := make([]*model.Graph, 0, len(s.models)-1)
	for _, o := range s.models {
		if o.Name != g.Name {
			others = append(others, o)
		}
	}
	s.mu.Unlock()
	// Sorted for the same reason as NewStore: pair-planning order must not
	// inherit map-iteration randomness.
	sort.Slice(others, func(i, j int) bool { return others[i].Name < others[j].Name })

	data, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		return fmt.Errorf("repository: encoding %s: %w", g.Name, err)
	}
	tmp := s.fileFor(g.Name) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("repository: writing %s: %w", g.Name, err)
	}
	if err := os.Rename(tmp, s.fileFor(g.Name)); err != nil {
		return fmt.Errorf("repository: committing %s: %w", g.Name, err)
	}
	if s.pre != nil {
		// Pairwise planning is enqueued asynchronously: Put returns in O(1)
		// and the plans fill in on the worker pool (Quiesce waits).
		s.pre.EnqueueAll(g, others)
	}
	return nil
}

// Quiesce blocks until every transformation plan enqueued by Put (or Open)
// has been computed into Plans().
func (s *Store) Quiesce() {
	if s.pre != nil {
		s.pre.Quiesce()
	}
}

// Get returns a stored model by name.
func (s *Store) Get(name string) (*model.Graph, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.models[name]
	return g, ok
}

// Delete removes a model from memory and disk.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	_, ok := s.models[name]
	delete(s.models, name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("repository: unknown model %q", name)
	}
	if err := os.Remove(s.fileFor(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("repository: deleting %s: %w", name, err)
	}
	return nil
}

// Names returns the stored model names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for n := range s.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored models.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.models)
}

// Plans returns the precomputed transformation-plan cache.
func (s *Store) Plans() *planner.Cache { return s.plans }

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }
