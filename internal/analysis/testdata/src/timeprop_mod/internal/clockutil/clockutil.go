// Package clockutil is the real-time half of the timeprop module fixture:
// helpers here may read the wall clock legally, but calling them from a
// virtual-time package launders the read past the wallclock checker.
package clockutil

import "time"

// Elapsed reads the wall clock directly.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Indirect launders the read through one more hop.
func Indirect(t0 time.Time) time.Duration { return Elapsed(t0) }

// Pure is clock-free.
func Pure(x int) int { return x * 2 }
