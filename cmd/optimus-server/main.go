// Command optimus-server runs the Optimus REST gateway (§7): register models
// and invoke inference functions over HTTP against a live Optimus-scheduled
// cluster.
//
//	optimus-server -addr :8080 -preload 8
//
//	curl localhost:8080/api/models
//	curl -X POST localhost:8080/api/invoke -d '{"model":"resnet50-imagenet"}'
//	curl 'localhost:8080/api/plan?src=resnet50-imagenet&dst=resnet101-imagenet'
//	curl localhost:8080/api/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/controlplane"
	"repro/internal/cost"
	"repro/internal/gateway"
	"repro/internal/policy"
	"repro/internal/repository"
	"repro/internal/simulate"
	"repro/internal/supervisor"
	"repro/internal/zoo"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		nodes      = flag.Int("nodes", 2, "worker nodes")
		slots      = flag.Int("containers", 4, "containers per node")
		gpu        = flag.Bool("gpu", false, "GPU hardware profile")
		policyName = flag.String("policy", "optimus", "container policy: optimus|openwhisk|pagurus|tetris")
		preload    = flag.Int("preload", 6, "preregister this many representative models (0 = none)")
		modelsDir  = flag.String("models-dir", "", "persist registered models to this directory (reloaded on restart)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handling timeout (0 = none)")
		maxInfl    = flag.Int("max-inflight", 256, "max concurrent requests before shedding with 503 (0 = unbounded)")
		drainTime  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		watchdog   = flag.Float64("watchdog", 0, "cancel transforms at this multiple of their planned cost (≤1 disables)")
		brkN       = flag.Int("breaker-threshold", 0, "open a pair's circuit breaker after N consecutive transform failures (0 disables)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "open-breaker wait before a half-open probe (default 5m)")
		ckptPath   = flag.String("checkpoint", "", "durable checkpoint file: restored on startup, written periodically and on shutdown")
		ckptEvery  = flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint cadence (0 = shutdown-only)")
		planWork   = flag.Int("plan-workers", 0, "offline-planning worker pool size (0 = GOMAXPROCS)")
		planMax    = flag.Int("plan-cache-max", 0, "max cached transformation plans, LRU-evicted beyond it (0 = unbounded)")
		seed       = flag.Int64("seed", 1, "fault-injection seed")
	)
	ff := cliutil.RegisterFaultFlags(flag.CommandLine, true)
	rf := cliutil.RegisterResilienceFlags(flag.CommandLine)
	fo := cliutil.RegisterFanoutFlags(flag.CommandLine)
	cp := cliutil.RegisterControlPlaneFlags(flag.CommandLine)
	flag.Parse()

	if err := ff.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := rf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := fo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	prof := cost.CPU()
	if *gpu {
		prof = cost.GPU()
	}
	var pol simulate.Policy
	switch *policyName {
	case "optimus":
		pol = policy.Optimus{}
	case "openwhisk":
		pol = policy.OpenWhisk{}
	case "pagurus":
		pol = policy.Pagurus{}
	case "tetris":
		pol = policy.Tetris{}
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	var store *repository.Store
	if *modelsDir != "" {
		var err error
		store, err = repository.Open(*modelsDir, nil)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("model repository at %s (%d models)", *modelsDir, store.Len())
	}
	gw := gateway.New(gateway.Config{
		Cluster: simulate.Config{
			Nodes:             *nodes,
			ContainersPerNode: *slots,
			Profile:           prof,
			Policy:            pol,
			Seed:              *seed,
			PlanCacheMax:      *planMax,
			Faults:            ff.Rates(),
			WatchdogFactor:    *watchdog,
			Breaker: supervisor.BreakerConfig{
				Threshold: *brkN,
				Cooldown:  *brkCool,
			},
			Health: rf.HealthConfig(),
			Retry:  rf.BackoffConfig(),
			Hedge:  rf.HedgeConfig(),
			// Fan-out trees only trigger in trace-replay mode; the flags are
			// still accepted here so all binaries validate them identically.
			Fanout: fo.Config(),
		},
		Repository:     store,
		RequestTimeout: *reqTimeout,
		MaxInflight:    *maxInfl,
		CheckpointPath: *ckptPath,
		PlanWorkers:    *planWork,
	})

	if *preload > 0 {
		img := zoo.Imgclsmob()
		cnn, bert := zoo.Representative21()
		names := append(append([]string(nil), cnn...), bert...)
		if *preload > len(names) {
			*preload = len(names)
		}
		bz := zoo.BERTZoo()
		for _, n := range names[:*preload] {
			g, err := img.Get(n)
			if err != nil {
				g = bz.MustGet(n)
			}
			if store != nil {
				if _, ok := store.Get(n); ok {
					continue // already persisted from a previous run
				}
			}
			if err := gw.RegisterModel(g); err != nil {
				if errors.Is(err, gateway.ErrDuplicateModel) {
					continue // already live, e.g. restored from a checkpoint
				}
				log.Fatalf("preload %s: %v", n, err)
			}
			log.Printf("preloaded %s", g)
		}
	}

	// In a multi-gateway deployment the proxy fronts the local handler: it
	// forwards non-owned invokes to their consistent-hash ring owner and
	// mirrors registrations, so every process serves an identical catalog
	// while plan caches warm only on owners (DESIGN.md "Multi-gateway
	// control plane").
	handler := http.Handler(gw.Handler())
	if cp.Enabled() {
		peers, err := cp.PeerSet()
		if err != nil {
			log.Fatal(err)
		}
		proxy, err := controlplane.NewProxy(*cp.Self, peers, *seed, cp.RingVNodes(), handler)
		if err != nil {
			log.Fatal(err)
		}
		handler = proxy
		log.Printf("control plane: self=%s, %d peers, %d vnodes", *cp.Self, len(peers), cp.RingVNodes())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("optimus-server listening on %s (policy=%s, %d nodes × %d containers, %s profile)\n",
		*addr, *policyName, *nodes, *slots, prof.Name)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests before
	// exiting so clients never see connections cut mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpointing: write atomic snapshots on a timer; a failed
	// write keeps the previous snapshot and the server keeps serving.
	if *ckptPath != "" && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := gw.SaveCheckpoint(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down, draining for up to %v", *drainTime)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			_ = srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		if *ckptPath != "" {
			// Final snapshot after the drain so the checkpoint reflects every
			// served request.
			if err := gw.SaveCheckpoint(); err != nil {
				log.Printf("shutdown checkpoint: %v", err)
			} else {
				log.Printf("checkpoint written to %s", *ckptPath)
			}
		}
		log.Print("bye")
	}
}
