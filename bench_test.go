package optimus

// One benchmark per paper table and figure (regenerating its data), plus
// microbenchmarks of the core primitives. The experiment benchmarks run in
// Quick mode so `go test -bench=.` stays bounded; use cmd/optimus-bench for
// full-scale runs.

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/planner"
	"repro/internal/zoo"
)

func benchOpts() experiments.Options { return experiments.Options{Quick: true, Seed: 1} }

func benchSetup() experiments.ClusterSetup {
	return experiments.ClusterSetup{Nodes: 4, ContainersPerNode: 2, Horizon: 6 * time.Hour}
}

// ---------------------------------------------------------------- Figures

func BenchmarkFig2RequestBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(benchOpts())
		if len(r.Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig3LoadingSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchOpts(), 100)
		if r.StructureFrac == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig4OpLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchOpts())
		if len(r.Rows) == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig5aStrawmanReplace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5a(benchOpts())
		if r.MeanReduction <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig5cReshapeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5c(benchOpts(), nil, 0)
		if len(r.Matrix) == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig8MetaOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOpts())
		if len(r.Rows) == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig11TransformMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchOpts())
		if len(r.Models) != 21 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig12LargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchOpts(), 40)
		if r.ImgReduction <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig13ServiceTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchOpts(), benchSetup())
		if len(r.Cells) != 8 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig14StartKinds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchOpts(), benchSetup())
		if r.RenderFig14() == "" {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig15MetaOpProportions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(benchOpts())
		if len(r.Cases) != 4 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig16GPUServiceTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(benchOpts(), benchSetup())
		if r.Profile != "gpu" {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable1Planning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchOpts())
		if len(r.Cases) != 3 {
			b.Fatal("bad result")
		}
	}
}

// ---------------------------------------------------------------- Ablations

func BenchmarkAblationPlannerQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPlannerQuality(benchOpts(), 10)
	}
}

func BenchmarkAblationSafeguard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSafeguard(benchOpts(), 10)
	}
}

func BenchmarkAblationPlanCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPlanCache(benchOpts(), 50)
	}
}

func BenchmarkAblationBalancer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationBalancer(benchOpts(), benchSetup())
	}
}

func BenchmarkAblationIdleThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationIdleThreshold(benchOpts(), benchSetup(),
			[]time.Duration{30 * time.Second, 5 * time.Minute})
	}
}

// ---------------------------------------------------------------- Core primitives

func BenchmarkGroupPlannerVGG16ToResNet50(b *testing.B) {
	img := zoo.Imgclsmob()
	src, dst := img.MustGet("vgg16-imagenet"), img.MustGet("resnet50-imagenet")
	pl := planner.New(cost.Exact(cost.CPU()), planner.AlgoGroup)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl.Plan(src, dst) == nil {
			b.Fatal("nil plan")
		}
	}
}

func BenchmarkHungarianPlannerVGG16ToResNet50(b *testing.B) {
	img := zoo.Imgclsmob()
	src, dst := img.MustGet("vgg16-imagenet"), img.MustGet("resnet50-imagenet")
	pl := planner.New(cost.Exact(cost.CPU()), planner.AlgoHungarian)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl.Plan(src, dst) == nil {
			b.Fatal("nil plan")
		}
	}
}

func BenchmarkGroupPlannerBERTBaseToMini(b *testing.B) {
	bz := zoo.BERTZoo()
	src, dst := bz.MustGet("bert-base-uncased"), bz.MustGet("bert-mini")
	pl := planner.New(cost.Exact(cost.CPU()), planner.AlgoGroup)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl.Plan(src, dst) == nil {
			b.Fatal("nil plan")
		}
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	tf := NewTransformer(CPU, AlgoGroup)
	img := Imgclsmob()
	src, dst := img.MustGet("resnet50-imagenet"), img.MustGet("resnet101-imagenet")
	tf.Plan(src, dst) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tf.Plan(src, dst) == nil {
			b.Fatal("nil plan")
		}
	}
}

func BenchmarkTransformExecuteResNet50To101(b *testing.B) {
	tf := NewTransformer(CPU, AlgoGroup)
	img := Imgclsmob()
	src, dst := img.MustGet("resnet50-imagenet"), img.MustGet("resnet101-imagenet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tf.Transform(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZooBuildResNet152(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := zoo.ResNet(zoo.ResNetConfig{Depth: 152}, 1000, "bench")
		if g.NumOps() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkZooBuildBERTBase(b *testing.B) {
	cfg := zoo.BERTConfig{Name: "bench-bert", Blocks: 12, Hidden: 768, Heads: 12, Vocab: 30522}
	for i := 0; i < b.N; i++ {
		g := zoo.BERT(cfg)
		if g.NumOps() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkNASBenchGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := zoo.NASBenchModel(i%zoo.NASBenchSize, 5, 10)
		if err != nil || g.NumOps() == 0 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	img := Imgclsmob()
	names := []string{"resnet18-imagenet", "resnet50-imagenet", "vgg16-imagenet", "densenet121-imagenet"}
	trace := MixedPoissonTrace(names, 24*time.Hour, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := NewSystem(SystemConfig{Nodes: 2, ContainersPerNode: 2})
		for _, n := range names {
			sys.MustRegister(n, img.MustGet(n))
		}
		rep, err := sys.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Len() != trace.Len() {
			b.Fatal("dropped requests")
		}
	}
	b.ReportMetric(float64(trace.Len()), "requests/op")
}

func BenchmarkAblationOnlineProfiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationOnlineProfiling(benchOpts(), benchSetup())
	}
}

func BenchmarkAblationAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationAllocation(benchOpts(), benchSetup())
	}
}

func BenchmarkSweepNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Scalability(benchOpts(), []int{2, 4}, 4*time.Hour)
	}
}

func BenchmarkSweepLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.LoadSweep(benchOpts(), []int{10, 20}, 4*time.Hour)
	}
}
