package zoo

import (
	"fmt"

	"repro/internal/model"
)

// GPTConfig describes a GPT-style decoder-only transformer. Its blocks use
// the same operation vocabulary as BERT (§5.2) — Q/K/V/O projections, Logit
// and Attend, LayerNorm, two FC layers — with pre-norm ordering and a tied
// language-model head, so GPT↔GPT transformations reshape exactly like the
// BERT ladder and GPT↔BERT pairs substitute attention-for-attention.
type GPTConfig struct {
	Name   string
	Blocks int
	Hidden int
	Vocab  int
	// BaseScope shares pre-trained weights across variants (e.g. a distilled
	// model re-using teacher embeddings); defaults to Name.
	BaseScope string
}

const gptMaxPos = 1024

// GPT builds the decoder described by cfg.
func GPT(cfg GPTConfig) *model.Graph {
	base := cfg.BaseScope
	if base == "" {
		base = cfg.Name
	}
	b := model.NewBuilder(cfg.Name, "gpt", base)
	h := cfg.Hidden
	b.Add(model.Operation{Name: "input", Type: model.OpInput, Shape: model.Shape{OutChannels: h}})
	tok := b.Add(model.Operation{Name: "emb.token", Type: model.OpEmbedding,
		Shape: model.Shape{InChannels: cfg.Vocab, OutChannels: h}})
	b.SetTail(0)
	pos := b.Add(model.Operation{Name: "emb.pos", Type: model.OpEmbedding,
		Shape: model.Shape{InChannels: gptMaxPos, OutChannels: h}})
	b.AddFrom(model.Operation{Name: "emb.add", Type: model.OpAdd, Shape: model.Shape{OutChannels: h}}, tok, pos)
	b.Add(model.Operation{Name: "emb.drop", Type: model.OpDropout, Shape: model.Shape{OutChannels: h}})

	for blk := 0; blk < cfg.Blocks; blk++ {
		tag := fmt.Sprintf("blk%d", blk)
		entry := b.Tail()[0]
		// Pre-norm attention.
		ln1 := b.AddFrom(model.Operation{Name: tag + ".ln1", Type: model.OpLayerNorm,
			Shape: model.Shape{OutChannels: h}}, entry)
		q := b.AddFrom(model.Operation{Name: tag + ".query", Type: model.OpQuery,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, ln1)
		k := b.AddFrom(model.Operation{Name: tag + ".key", Type: model.OpKey,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, ln1)
		v := b.AddFrom(model.Operation{Name: tag + ".value", Type: model.OpValue,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, ln1)
		logit := b.AddFrom(model.Operation{Name: tag + ".logit", Type: model.OpLogit,
			Shape: model.Shape{OutChannels: h}}, q, k)
		att := b.AddFrom(model.Operation{Name: tag + ".attend", Type: model.OpAttend,
			Shape: model.Shape{OutChannels: h}}, logit, v)
		b.AddFrom(model.Operation{Name: tag + ".output", Type: model.OpAttnOutput,
			Shape: model.Shape{InChannels: h, OutChannels: h}}, att)
		res1 := b.AddMerge(tag+".add1", h, b.Tail()[0], entry)
		// Pre-norm MLP.
		b.AddFrom(model.Operation{Name: tag + ".ln2", Type: model.OpLayerNorm,
			Shape: model.Shape{OutChannels: h}}, res1)
		b.Dense(tag+".fc1", h, 4*h)
		b.Add(model.Operation{Name: tag + ".gelu", Type: model.OpGELU, Shape: model.Shape{OutChannels: 4 * h}})
		b.Dense(tag+".fc2", 4*h, h)
		b.AddMerge(tag+".add2", h, b.Tail()[0], res1)
	}
	b.Add(model.Operation{Name: "final.ln", Type: model.OpLayerNorm, Shape: model.Shape{OutChannels: h}})
	b.Dense("lm_head", h, cfg.Vocab)
	b.Add(model.Operation{Name: "softmax", Type: model.OpSoftmax, Shape: model.Shape{OutChannels: cfg.Vocab}})
	b.Output(h)
	return b.Graph()
}

// gptVariants follows the published GPT-2 ladder plus DistilGPT-2 (which
// shares the teacher's embedding scope).
var gptVariants = []GPTConfig{
	{Name: "distilgpt2", Blocks: 6, Hidden: 768, Vocab: 50257, BaseScope: "gpt2"},
	{Name: "gpt2", Blocks: 12, Hidden: 768, Vocab: 50257},
	{Name: "gpt2-medium", Blocks: 24, Hidden: 1024, Vocab: 50257},
}

// GPTNames returns the GPT catalog names in order.
func GPTNames() []string {
	out := make([]string, len(gptVariants))
	for i, v := range gptVariants {
		out[i] = v.Name
	}
	return out
}

// GPTZoo returns the registry of GPT-style decoder models.
func GPTZoo() *Registry {
	r := NewRegistry()
	for _, v := range gptVariants {
		v := v
		r.Register(v.Name, func() *model.Graph { return GPT(v) })
	}
	return r
}
