package workload

import (
	"strings"
	"testing"
)

// FuzzAzureCSV hammers the Azure invocations parser with malformed input:
// whatever the bytes, it must either return a well-formed trace or an error —
// never panic, and never expand a hostile count cell into an OOM (the small
// limit keeps the fuzzer fast while exercising the same cap the default
// limit enforces).
func FuzzAzureCSV(f *testing.F) {
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http,3\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1,2\no1,a1,f1,http,2,0\no2,a2,f2,timer,0,5\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http,-4\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http,NaN\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http,999999999999\n")
	f.Add("HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http\n")
	f.Add("not,a,header\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		const limit = 100_000
		tr, err := ReadAzureInvocationsCSVLimit(strings.NewReader(data), limit)
		if err != nil {
			return
		}
		if tr.Len() > limit {
			t.Fatalf("trace has %d requests, over the %d limit", tr.Len(), limit)
		}
		for i, r := range tr.Requests {
			if r.At < 0 || r.At > tr.Duration {
				t.Fatalf("request %d at %v outside horizon %v", i, r.At, tr.Duration)
			}
			if i > 0 {
				prev := tr.Requests[i-1]
				if r.At < prev.At || (r.At == prev.At && r.Function < prev.Function) {
					t.Fatalf("requests %d,%d out of (At, Function) order: %+v then %+v", i-1, i, prev, r)
				}
			}
		}
	})
}
