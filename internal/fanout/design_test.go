package fanout

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDesignDocMatchesTransitions keeps the lineage-quarantine table in
// DESIGN.md's "Transform fan-out trees" section in lockstep with
// Transitions(): adding, removing, or rewording a transition in one place
// without the other fails here.
func TestDesignDocMatchesTransitions(t *testing.T) {
	raw, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	const header = "## Transform fan-out trees"
	_, rest, found := strings.Cut(string(raw), header)
	if !found {
		t.Fatalf("DESIGN.md is missing the %q section", header)
	}
	if next := strings.Index(rest, "\n## "); next >= 0 {
		rest = rest[:next]
	}
	rowRE := regexp.MustCompile("(?m)^\\|\\s*`([a-z]+)`\\s*\\|\\s*`([a-z]+)`\\s*\\|\\s*([^|]+?)\\s*\\|")
	var documented []string
	for _, m := range rowRE.FindAllStringSubmatch(rest, -1) {
		documented = append(documented, fmt.Sprintf("%s→%s: %s", m[1], m[2], m[3]))
	}

	var registered []string
	for _, tr := range Transitions() {
		registered = append(registered, fmt.Sprintf("%s→%s: %s", tr.From, tr.To, tr.Trigger))
	}
	if strings.Join(documented, "\n") != strings.Join(registered, "\n") {
		t.Errorf("DESIGN.md documents:\n%s\n\nbut Transitions() holds:\n%s\n\nupdate the table in %q or fanout.Transitions to match",
			strings.Join(documented, "\n"), strings.Join(registered, "\n"), header)
	}
}
