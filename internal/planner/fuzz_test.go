package planner

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/metaop"
)

// FuzzPlanApply fuzzes the meta-operator executor with real planner output
// and corrupted variants of it. For any seeded graph pair and algorithm the
// plan must apply cleanly and reproduce the destination model; for mutated
// plans Apply may reject the input but must never panic and never mutate the
// source graph. Runs from its seed corpus under plain `go test` and explores
// further under `go test -fuzz=FuzzPlanApply`.
func FuzzPlanApply(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(0), uint16(0))
	f.Add(int64(3), int64(4), uint8(1), uint16(7))
	f.Add(int64(5), int64(6), uint8(2), uint16(0xffff))
	f.Add(int64(7), int64(7), uint8(0), uint16(123))
	f.Add(int64(42), int64(9), uint8(1), uint16(3001))
	prof := cost.CPU()
	est := cost.Exact(prof)

	f.Fuzz(func(t *testing.T, seedA, seedB int64, algo uint8, mut uint16) {
		src := randomGraph("src", seedA, 10)
		dst := randomGraph("dst", seedB, 10)
		if src.Validate() != nil || dst.Validate() != nil {
			t.Skip("generator produced an invalid graph")
		}
		a := Algorithm(algo % 3)
		if a == AlgoBrute && src.NumOps()+dst.NumOps() > bruteForceLimit {
			// Brute force only accepts tiny matrices; fall back to the other
			// exact solver so every input still exercises Apply.
			a = AlgoHungarian
		}
		p := New(est, a).Plan(src, dst)

		srcBefore := src.Clone()
		got, _, err := metaop.Apply(prof, p, src, dst)
		if err != nil {
			t.Fatalf("%v plan failed to apply: %v", a, err)
		}
		if !got.Equal(dst) {
			t.Fatalf("%v plan did not reproduce the destination model", a)
		}
		if !src.Equal(srcBefore) {
			t.Fatal("Apply mutated the source graph")
		}

		// Corrupt one step of a deep-copied plan: Apply must reject malformed
		// plans with an error (or tolerate semantically harmless edits) but
		// must never panic, and must still leave src untouched.
		if len(p.Steps) == 0 {
			return
		}
		cp := *p
		cp.Steps = append([]metaop.Step(nil), p.Steps...)
		i := int(mut) % len(cp.Steps)
		s := &cp.Steps[i]
		switch mut % 5 {
		case 0:
			s.DstID = int(mut) // likely out of range
		case 1:
			s.SrcID = -2 - int(mut%7) // dangling source reference
		case 2:
			s.Kind = metaop.Kind(250) // unknown kind
		case 3:
			cp.Steps = append(cp.Steps, cp.Steps[i]) // duplicated step
		case 4:
			s.EdgeFrom, s.EdgeTo = int(mut%31), int(mut%17) // bogus wiring
		}
		_, _, _ = metaop.Apply(prof, &cp, src, dst)
		if !src.Equal(srcBefore) {
			t.Fatal("Apply of a corrupted plan mutated the source graph")
		}
	})
}

// FuzzPlanTruncated drops a suffix of the plan's steps: the executor must
// detect the hole (unrealized destination slot or unbalanced edge diff)
// rather than silently completing the transformation.
func FuzzPlanTruncated(f *testing.F) {
	f.Add(int64(1), int64(2), uint16(1))
	f.Add(int64(8), int64(3), uint16(2))
	prof := cost.CPU()
	est := cost.Exact(prof)

	f.Fuzz(func(t *testing.T, seedA, seedB int64, cut uint16) {
		src := randomGraph("src", seedA, 10)
		dst := randomGraph("dst", seedB, 10)
		p := New(est, AlgoGroup).Plan(src, dst)
		if p.LoadFromScratch || len(p.Steps) == 0 {
			t.Skip("nothing to truncate")
		}
		keep := int(cut) % len(p.Steps)
		cp := *p
		cp.Steps = append([]metaop.Step(nil), p.Steps[:keep]...)
		got, _, err := metaop.Apply(prof, &cp, src, dst)
		if err == nil && !got.Equal(dst) {
			t.Fatalf("truncated plan (%d of %d steps) applied to a wrong graph without error",
				keep, len(p.Steps))
		}
	})
}
