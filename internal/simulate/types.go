// Package simulate is a discrete-event simulator for a serverless ML
// inference cluster: nodes host a bounded number of containers, each
// container holds one loaded model, and a pluggable container-management
// policy (package policy) decides per request whether to reuse a warm
// container, repurpose an idle one, or start cold.
//
// Time is virtual (time.Duration offsets from simulation start); all
// latencies are charged from the cost model, so runs are deterministic and
// fast regardless of the simulated horizon.
package simulate

import (
	"time"

	"repro/internal/cost"
	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
)

// Function is a deployed serverless ML inference function: a name bound to a
// model graph.
type Function struct {
	Name  string
	Model *model.Graph
}

// Container is a (simulated) container hosting one model.
type Container struct {
	ID int
	// Fn is the function whose model the container currently holds.
	Fn *Function
	// MemMB is the container's memory grant. Zero in the default slot-based
	// mode; set by the memory-aware allocation modes (§6).
	MemMB int
	// BusyUntil is the completion time of the in-flight request, if any.
	BusyUntil time.Duration
	// LastDone is when the container last finished serving. The paper's
	// per-container timer resets on every new request; equivalently a
	// container's idle age at time t is t - LastDone.
	LastDone time.Duration
	// Created is the container's creation time.
	Created time.Duration

	// dead marks a container destroyed by an injected crash or node
	// outage; pending completion events for it are ignored.
	dead bool
	// fanoutFresh marks a replica just warmed by a fan-out transform tree;
	// its first warm reuse is recorded as a StartFanout and clears the flag.
	// fanoutBuilt persists for the container's lifetime: tree-built warmth
	// serves the whole cluster, so whenever such a replica idles it may steal
	// queued work from other nodes regardless of static placement.
	fanoutFresh bool
	fanoutBuilt bool
	// crashPending marks a container whose current service was scheduled as a
	// crash (its record is NOT committed yet — the crash event resolves the
	// request). Every other serving container's record was committed at serve
	// time, so paths that destroy containers mid-service re-dispatch the
	// in-flight request only when crashPending is set; retrying a committed
	// request would double-count it.
	crashPending bool
	// idxState is the routing index's view of the container (idx* constants);
	// idxNone when the node's index is disabled.
	idxState uint8
	// idxOrd is the function ordinal the container's index registration is
	// counted under; rewritten by startService when the container is served
	// (possibly repurposed) for another function.
	idxOrd int32
	// serving is the request in flight (valid when hasServing), kept so a
	// crash or outage can re-dispatch it (trace-replay mode only). A value
	// rather than a pointer so the hot path never allocates per request.
	serving    inflight
	hasServing bool
}

// inflight is the bookkeeping for a request being served, carried so fault
// recovery can re-dispatch it with its retry budget.
type inflight struct {
	fr      *fnRuntime
	arrival time.Duration
	retries int
}

// Busy reports whether the container is serving a request at time now.
func (c *Container) Busy(now time.Duration) bool { return c.BusyUntil > now }

// IdleFor returns how long the container has been idle at time now
// (zero if busy).
func (c *Container) IdleFor(now time.Duration) time.Duration {
	if c.Busy(now) {
		return 0
	}
	if now < c.LastDone {
		return 0
	}
	return now - c.LastDone
}

// Node is a worker machine hosting up to Capacity containers and, when
// MemoryMB is nonzero, at most MemoryMB of container memory.
type Node struct {
	ID         int
	Capacity   int
	MemoryMB   int
	Containers []*Container
	// DownUntil, when in the future, marks the node as failed by an
	// injected outage: routing skips it until it recovers.
	DownUntil time.Duration
	// SlowUntil, FlakyUntil and BandwidthUntil mark gray-failure windows:
	// the node keeps serving, but slower (latency multiplier), with flaky
	// transform donors, or with degraded transform bandwidth.
	SlowUntil      time.Duration
	FlakyUntil     time.Duration
	BandwidthUntil time.Duration

	queue  []queued
	nextID int
	// idx is the incrementally-maintained routing index (index.go); nil when
	// the simulator routes by scanning (Online mode, RouteScan baseline).
	idx *nodeIndex
}

// Down reports whether the node is out due to an injected outage.
func (n *Node) Down(now time.Duration) bool { return n.DownUntil > now }

// Slow reports whether the node is inside a gray slow-node window.
func (n *Node) Slow(now time.Duration) bool { return n.SlowUntil > now }

// Flaky reports whether the node is inside a flaky-donor window.
func (n *Node) Flaky(now time.Duration) bool { return n.FlakyUntil > now }

// DegradedBandwidth reports whether the node's transform bandwidth is
// degraded.
func (n *Node) DegradedBandwidth(now time.Duration) bool { return n.BandwidthUntil > now }

// UsedMB sums the memory grants of resident containers.
func (n *Node) UsedMB() int {
	total := 0
	for _, c := range n.Containers {
		total += c.MemMB
	}
	return total
}

// fitsMemory reports whether a new grant of need MB fits now.
func (n *Node) fitsMemory(need int) bool {
	return n.MemoryMB == 0 || n.UsedMB()+need <= n.MemoryMB
}

type queued struct {
	fr      *fnRuntime
	arrival time.Duration
	retries int
}

// WarmIdle returns an idle container already holding fn's model, or nil.
func (n *Node) WarmIdle(fn *Function, now time.Duration) *Container {
	for _, c := range n.Containers {
		if !c.Busy(now) && c.Fn == fn {
			return c
		}
	}
	return nil
}

// IdleOthers returns containers of other functions that have been idle for
// at least minIdle (the idle-container identification mechanism of §4.2).
func (n *Node) IdleOthers(fn *Function, now, minIdle time.Duration) []*Container {
	var out []*Container
	for _, c := range n.Containers {
		if c.Fn != fn && !c.Busy(now) && c.IdleFor(now) >= minIdle {
			out = append(out, c)
		}
	}
	return out
}

// HasIdleOther reports whether the node holds at least one container of
// another function idle for at least minIdle — the IdleOthers predicate
// without materializing the slice, so routing scores allocate nothing.
func (n *Node) HasIdleOther(fn *Function, now, minIdle time.Duration) bool {
	for _, c := range n.Containers {
		if c.Fn != fn && !c.Busy(now) && c.IdleFor(now) >= minIdle {
			return true
		}
	}
	return false
}

// RepurposeCandidates returns the idle containers of other functions that a
// sharing policy may repurpose at time now. Eligibility follows the
// "help rather than recycle" principle the sharing systems are built on: a
// container is offered to other functions only when its owner is unlikely
// to use it again —
//
//   - the node is out of free slots (the next cold start would evict it
//     anyway), or
//   - its idle age exceeds half the keep-alive horizon (owners that idle
//     this long usually let the container expire), or
//   - its owner's observed inter-arrival time says the owner is overdue
//     (idle for at least twice the owner's typical gap).
//
// This keeps sharing from cannibalizing warm containers that hot functions
// are about to reuse.
func (n *Node) RepurposeCandidates(env *Env, fn *Function, now time.Duration) []*Container {
	idle := n.IdleOthers(fn, now, env.IdleThreshold)
	if env.MemoryMode != MemorySlots {
		// A donor can only host the destination model if it fits the
		// donor's memory grant (fine-grained containers cannot grow in
		// place; homogeneous ones are uniform).
		need := env.Profile.MemoryMB(fn.Model)
		fitting := idle[:0]
		for _, c := range idle {
			if need <= c.MemMB {
				fitting = append(fitting, c)
			}
		}
		idle = fitting
	}
	if len(idle) == 0 {
		return nil
	}
	if !n.HasRoomFor(env.GrantFor(fn)) {
		return idle
	}
	nearExpiry := env.KeepAlive / 2
	var out []*Container
	for _, c := range idle {
		if c.IdleFor(now) >= nearExpiry {
			out = append(out, c)
			continue
		}
		if env.MeanInterArrival != nil {
			if gap, ok := env.MeanInterArrival(c.Fn.Name); ok && c.IdleFor(now) >= 2*gap {
				out = append(out, c)
			}
		}
	}
	return out
}

// AnyContainer reports whether the node currently hosts any container.
func (n *Node) AnyContainer() bool { return len(n.Containers) > 0 }

// HasRoom reports whether a new container fits without eviction. In
// memory-aware modes callers should use HasRoomFor with the desired grant.
func (n *Node) HasRoom() bool { return n.HasRoomFor(0) }

// HasRoomFor reports whether a container with the given memory grant fits
// without eviction.
func (n *Node) HasRoomFor(memMB int) bool {
	return len(n.Containers) < n.Capacity && n.fitsMemory(memMB)
}

// CanPlace reports whether a new container could be started now, evicting
// idle containers if necessary.
func (n *Node) CanPlace(now time.Duration) bool { return n.CanPlaceFor(now, 0) }

// CanPlaceFor is CanPlace for a container of the given memory grant: idle
// containers count as reclaimable slots and memory.
func (n *Node) CanPlaceFor(now time.Duration, memMB int) bool {
	slots := len(n.Containers)
	free := 0
	if n.MemoryMB > 0 {
		free = n.MemoryMB - n.UsedMB()
	}
	for _, c := range n.Containers {
		if !c.Busy(now) {
			slots--
			free += c.MemMB
		}
	}
	if slots >= n.Capacity {
		return false
	}
	return n.MemoryMB == 0 || free >= memMB
}

// EvictExpired removes containers idle longer than keepAlive (the 10-minute
// keep-alive strategy all compared systems share, §8.1). With the routing
// index enabled it keeps a conservative lower bound on the earliest possible
// expiry and skips the scan entirely until then; the bound accounts for the
// stale-LastDone boundary (a container at now == BusyUntil whose completion
// event has not yet run is judged by its previous LastDone, exactly as the
// scan does).
func (n *Node) EvictExpired(now, keepAlive time.Duration) {
	if ix := n.idx; ix != nil && ix.evictSet && now < ix.nextEvict {
		return
	}
	kept := n.Containers[:0]
	for _, c := range n.Containers {
		if !c.Busy(now) && c.IdleFor(now) >= keepAlive {
			if n.idx != nil {
				n.idx.remove(c)
			}
			continue
		}
		kept = append(kept, c)
	}
	n.Containers = kept
	if ix := n.idx; ix != nil {
		// Recompute the bound: an idle container can expire at
		// LastDone+keepAlive; a busy one no earlier than both its BusyUntil
		// and its (stale) LastDone+keepAlive; containers created later expire
		// no earlier than now+keepAlive.
		next := now + keepAlive
		for _, c := range n.Containers {
			e := c.LastDone + keepAlive
			if c.Busy(now) && c.BusyUntil > e {
				e = c.BusyUntil
			}
			if e < next {
				next = e
			}
		}
		ix.nextEvict, ix.evictSet = next, true
	}
}

// evictLRUIdle removes the longest-idle container to make room; it returns
// false if every container is busy.
func (n *Node) evictLRUIdle(now time.Duration) bool {
	idx := -1
	var best time.Duration = -1
	for i, c := range n.Containers {
		if c.Busy(now) {
			continue
		}
		if f := c.IdleFor(now); f > best {
			best = f
			idx = i
		}
	}
	if idx < 0 {
		return false
	}
	if n.idx != nil {
		n.idx.remove(n.Containers[idx])
	}
	n.Containers = append(n.Containers[:idx], n.Containers[idx+1:]...)
	return true
}

// newContainer creates and registers a fresh container with the given
// memory grant; callers must have checked CanPlaceFor. Idle containers are
// evicted LRU-first until the new one fits.
func (n *Node) newContainer(fn *Function, memMB int, now time.Duration) *Container {
	for !n.HasRoomFor(memMB) {
		if !n.evictLRUIdle(now) {
			break
		}
	}
	c := &Container{ID: n.ID*1_000_000 + n.nextID, Fn: fn, MemMB: memMB, Created: now, LastDone: now}
	n.nextID++
	n.Containers = append(n.Containers, c)
	if n.idx != nil {
		n.idx.add(c, now)
	}
	return c
}

// Remove deletes a container from the node (used when a repurposed container
// is replaced wholesale).
func (n *Node) Remove(c *Container) {
	for i, x := range n.Containers {
		if x == c {
			if n.idx != nil {
				n.idx.remove(c)
			}
			n.Containers = append(n.Containers[:i], n.Containers[i+1:]...)
			return
		}
	}
}

// Decision is a policy's answer for one request.
type Decision struct {
	// Kind classifies the start for Fig 14 accounting.
	Kind metrics.StartKind
	// Init is the sandbox/runtime initialization latency charged.
	Init time.Duration
	// Load is the model acquisition latency charged (full load,
	// transformation cost, or zero for a warm start).
	Load time.Duration
	// Reuse, when non-nil, is the existing container that serves the
	// request; nil means a new container is created.
	Reuse *Container
	// Plan, when non-nil, is the transformation plan behind a
	// model-transformation decision (used for verification and Fig 15).
	Plan *metaop.Plan
}

// MemoryMode selects how container memory is allocated (§6 Limitation 1).
type MemoryMode int

const (
	// MemorySlots ignores memory: nodes host up to Capacity containers
	// (the paper's homogeneous "same and sufficient resources" default).
	MemorySlots MemoryMode = iota
	// MemoryHomogeneous grants every container the same fixed memory and
	// bounds nodes by total memory — large-model containers repurposed for
	// small models waste their surplus.
	MemoryHomogeneous
	// MemoryFineGrained sizes each container to its model's footprint and
	// resizes on transformation, packing more containers per node.
	MemoryFineGrained
)

// Env is the shared context policies consult.
type Env struct {
	Profile *cost.Profile
	Planner *planner.Planner
	Plans   *planner.Cache
	// MemoryMode and ContainerMemoryMB configure the allocation mode.
	MemoryMode        MemoryMode
	ContainerMemoryMB int
	// IdleThreshold is the minimum idle age before a container of another
	// function may be repurposed (§4.2; default 60 s).
	IdleThreshold time.Duration
	// KeepAlive is the container keep-alive horizon (default 10 min).
	KeepAlive time.Duration
	// MeanInterArrival reports a function's observed mean request gap, if
	// known. The simulator maintains it as an EWMA over arrivals; sharing
	// policies use it to judge whether an idle container's owner is likely
	// to return (§4.2's idle identification enriched with the demand
	// prediction the inter-function sharing systems rely on).
	MeanInterArrival func(fn string) (time.Duration, bool)
}

// GrantFor returns the memory grant a fresh container for fn receives under
// the current allocation mode.
func (e *Env) GrantFor(fn *Function) int {
	switch e.MemoryMode {
	case MemoryHomogeneous:
		need := e.Profile.MemoryMB(fn.Model)
		if need > e.ContainerMemoryMB {
			// Oversized models get an enlarged grant (the operator sizes up);
			// everything else gets the uniform allocation.
			return need
		}
		return e.ContainerMemoryMB
	case MemoryFineGrained:
		return e.Profile.MemoryMB(fn.Model)
	default:
		return 0
	}
}

// Policy decides how to serve a request on a node. ok=false means the node
// cannot serve now (every container busy and no room) and the request queues.
type Policy interface {
	Name() string
	Serve(env *Env, n *Node, fn *Function, now time.Duration) (Decision, bool)
}
