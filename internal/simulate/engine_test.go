package simulate_test

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/workload"
	"repro/internal/zoo"
)

func testFunctions(t testing.TB, names ...string) []*simulate.Function {
	t.Helper()
	img := zoo.Imgclsmob()
	out := make([]*simulate.Function, 0, len(names))
	for _, n := range names {
		out = append(out, &simulate.Function{Name: n, Model: img.MustGet(n)})
	}
	return out
}

func singleRequestTrace(fn string, at time.Duration) *workload.Trace {
	return &workload.Trace{
		Duration: at + time.Hour,
		Requests: []workload.Request{{Function: fn, At: at}},
	}
}

func TestColdThenWarm(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet18-imagenet", At: 2 * time.Minute},
		},
	}
	sim := simulate.New(simulate.Config{Policy: policy.OpenWhisk{}}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Kind != metrics.StartCold {
		t.Errorf("first request should be cold, got %v", recs[0].Kind)
	}
	if recs[1].Kind != metrics.StartWarm {
		t.Errorf("second request should be warm, got %v", recs[1].Kind)
	}
	if recs[1].Latency() >= recs[0].Latency() {
		t.Error("warm start should be faster than cold start")
	}
	prof := cost.CPU()
	wantCold := prof.SandboxInit + prof.ModelLoad(fns[0].Model).Total() + prof.Compute(fns[0].Model)
	if recs[0].Latency() != wantCold {
		t.Errorf("cold latency %v, want %v", recs[0].Latency(), wantCold)
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet")
	tr := &workload.Trace{
		Duration: 2 * time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet18-imagenet", At: 30 * time.Minute}, // past 10-min keep-alive
		},
	}
	sim := simulate.New(simulate.Config{Policy: policy.OpenWhisk{}}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Records()[1].Kind != metrics.StartCold {
		t.Error("request after keep-alive expiry should be cold")
	}
}

func TestUnknownFunctionRejected(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet")
	sim := simulate.New(simulate.Config{Policy: policy.OpenWhisk{}}, fns)
	if _, err := sim.Run(singleRequestTrace("nope", 0)); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestOptimusTransformsIdleContainer(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			// 2 min later: resnet18's container is idle past the 60 s
			// threshold, so Optimus transforms it.
			{Function: "resnet34-imagenet", At: 2 * time.Minute},
		},
	}
	sim := simulate.New(simulate.Config{
		Policy:            policy.Optimus{},
		ContainersPerNode: 1, // full node: the idle container would be recycled
		VerifyTransforms:  true,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if recs[1].Kind != metrics.StartTransform {
		t.Fatalf("second request kind = %v, want transform", recs[1].Kind)
	}
	if sim.TransformsVerified != 1 {
		t.Errorf("TransformsVerified = %d, want 1", sim.TransformsVerified)
	}
	// The transformation must beat a cold start.
	if recs[1].Latency() >= recs[0].Latency() {
		t.Errorf("transform latency %v not better than cold %v", recs[1].Latency(), recs[0].Latency())
	}
	if recs[1].Init != 0 {
		t.Errorf("transform should skip sandbox init, got %v", recs[1].Init)
	}
}

func TestIdleThresholdRespected(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet")
	// Second request arrives 10 s after the first completes — the resnet18
	// container is idle but NOT past the 60 s threshold, and the node has
	// room, so Optimus cold-starts instead of stealing a fresh container.
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet34-imagenet", At: 11 * time.Second},
		},
	}
	sim := simulate.New(simulate.Config{Policy: policy.Optimus{}, ContainersPerNode: 1}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Records()[1].Kind; got != metrics.StartCold {
		t.Errorf("young idle container was repurposed: kind %v", got)
	}
}

func TestQueueingWhenSaturated(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet18-imagenet", At: 10 * time.Millisecond},
		},
	}
	sim := simulate.New(simulate.Config{
		Policy:            policy.OpenWhisk{},
		Nodes:             1,
		ContainersPerNode: 1,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1].Wait == 0 {
		t.Error("second request should have queued")
	}
	if recs[1].Kind != metrics.StartWarm {
		t.Errorf("dequeued request should reuse the warm container, got %v", recs[1].Kind)
	}
}

func TestPagurusSavesSandboxInit(t *testing.T) {
	fns := testFunctions(t, "resnet18-imagenet", "resnet34-imagenet")
	tr := &workload.Trace{
		Duration: time.Hour,
		Requests: []workload.Request{
			{Function: "resnet18-imagenet", At: 0},
			{Function: "resnet34-imagenet", At: 2 * time.Minute},
		},
	}
	sim := simulate.New(simulate.Config{Policy: policy.Pagurus{}, ContainersPerNode: 1}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	rec := col.Records()[1]
	if rec.Kind != metrics.StartTransform {
		t.Fatalf("kind = %v", rec.Kind)
	}
	prof := cost.CPU()
	if rec.Init != 0 {
		t.Errorf("Pagurus should save sandbox init, got %v", rec.Init)
	}
	if rec.Load != prof.ModelLoad(fns[1].Model).Total() {
		t.Errorf("Pagurus must still load the full model: %v", rec.Load)
	}
}

func TestTetrisSharesIdenticalOps(t *testing.T) {
	img := zoo.Imgclsmob()
	// Two structurally identical models with *the same* weights scope would
	// be the same function; instead use resnet50 trained on two datasets —
	// identical structure, different weights → Tetris shares nothing — and
	// compare against a same-weights scenario crafted via the BERT zoo,
	// where downstream variants share the pre-trained base tensors.
	bert := zoo.BERTZoo()
	fns := []*simulate.Function{
		{Name: "sc", Model: bert.MustGet("bert-base-sc")},
		{Name: "qa", Model: bert.MustGet("bert-base-qa")},
		{Name: "r50a", Model: img.MustGet("resnet50-cifar10")},
		{Name: "r50b", Model: img.MustGet("resnet50-svhn")},
	}
	mk := func(a, b string) *workload.Trace {
		return &workload.Trace{
			Duration: time.Hour,
			Requests: []workload.Request{
				{Function: a, At: 0},
				{Function: b, At: 2 * time.Minute},
			},
		}
	}
	simBert := simulate.New(simulate.Config{Policy: policy.Tetris{}, ContainersPerNode: 2}, fns)
	colBert, err := simBert.Run(mk("sc", "qa"))
	if err != nil {
		t.Fatal(err)
	}
	simR50 := simulate.New(simulate.Config{Policy: policy.Tetris{}, ContainersPerNode: 2}, fns)
	colR50, err := simR50.Run(mk("r50a", "r50b"))
	if err != nil {
		t.Fatal(err)
	}
	bertLoad := colBert.Records()[1].Load
	r50Load := colR50.Records()[1].Load
	prof := cost.CPU()
	full := prof.ModelLoad(fns[1].Model).Total()
	if bertLoad >= full/2 {
		t.Errorf("Tetris should share most BERT base tensors: load %v vs full %v", bertLoad, full)
	}
	fullR50 := prof.ModelLoad(fns[3].Model).Total()
	if r50Load < fullR50*8/10 {
		t.Errorf("Tetris should share almost nothing across different weights: load %v vs full %v", r50Load, fullR50)
	}
}

// TestPolicyOrdering reproduces the Fig 13 shape on a small cluster:
// Optimus < Tetris, Pagurus < OpenWhisk mean service time, with Optimus
// reducing latency by a Fig-13-like margin.
func TestPolicyOrdering(t *testing.T) {
	names := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet",
		"vgg16-imagenet", "vgg19-imagenet",
		"mobilenet-w1-imagenet", "mobilenet-w0.75-imagenet",
		"densenet121-imagenet", "densenet169-imagenet",
	}
	fns := testFunctions(t, names...)
	tr := workload.MixedPoisson(names, 12*time.Hour, 17)
	means := map[string]time.Duration{}
	for _, pol := range policy.All() {
		// Fewer container slots (6) than functions (9): the capacity-limited
		// regime the paper evaluates, where warm containers cannot be kept
		// for every model type (§4.1).
		sim := simulate.New(simulate.Config{
			Policy:            pol,
			Nodes:             2,
			ContainersPerNode: 3,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if col.Len() != tr.Len() {
			t.Fatalf("%s served %d of %d requests", pol.Name(), col.Len(), tr.Len())
		}
		means[pol.Name()] = col.MeanLatency()
	}
	t.Logf("means: %v", means)
	if !(means["optimus"] < means["pagurus"] && means["optimus"] < means["openwhisk"] && means["optimus"] < means["tetris"]) {
		t.Errorf("Optimus should be fastest: %v", means)
	}
	if means["pagurus"] >= means["openwhisk"] {
		t.Errorf("Pagurus should beat OpenWhisk: %v", means)
	}
	reduction := 1 - float64(means["optimus"])/float64(means["openwhisk"])
	if reduction < 0.15 {
		t.Errorf("Optimus reduction vs OpenWhisk = %.1f%%, want Fig-13-like ≥ 15%%", 100*reduction)
	}
}

// TestColdStartRatios reproduces the Fig 14 shape: container transformation
// replaces most cold starts under Optimus.
func TestColdStartRatios(t *testing.T) {
	names := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet",
		"vgg16-imagenet", "vgg19-imagenet", "densenet121-imagenet",
	}
	fns := testFunctions(t, names...)
	tr := workload.MixedPoisson(names, 12*time.Hour, 23)

	run := func(p simulate.Policy) map[metrics.StartKind]float64 {
		sim := simulate.New(simulate.Config{Policy: p, Nodes: 1, ContainersPerNode: 8}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col.KindFractions()
	}
	ow := run(policy.OpenWhisk{})
	op := run(policy.Optimus{})
	if op[metrics.StartCold] >= ow[metrics.StartCold] {
		t.Errorf("Optimus cold fraction %.2f not below OpenWhisk %.2f", op[metrics.StartCold], ow[metrics.StartCold])
	}
	if op[metrics.StartTransform] == 0 {
		t.Error("Optimus performed no transformations")
	}
	if ow[metrics.StartTransform] != 0 {
		t.Error("OpenWhisk should never transform")
	}
}

func TestDeterminism(t *testing.T) {
	names := []string{"resnet18-imagenet", "resnet50-imagenet", "vgg16-imagenet"}
	fns := testFunctions(t, names...)
	tr := workload.MixedPoisson(names, 6*time.Hour, 5)
	run := func() time.Duration {
		sim := simulate.New(simulate.Config{Policy: policy.Optimus{}}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col.MeanLatency()
	}
	if run() != run() {
		t.Error("simulation not deterministic")
	}
}

func TestPlacementRestrictsNodes(t *testing.T) {
	names := []string{"resnet18-imagenet", "vgg16-imagenet"}
	fns := testFunctions(t, names...)
	tr := workload.Poisson(names, 0.005, 4*time.Hour, 3)
	sim := simulate.New(simulate.Config{
		Policy: policy.OpenWhisk{},
		Nodes:  3,
		Placement: map[string][]int{
			"resnet18-imagenet": {0},
			"vgg16-imagenet":    {0},
		},
	}, fns)
	if _, err := sim.Run(tr); err != nil {
		t.Fatal(err)
	}
	nodes := sim.Nodes()
	if len(nodes[1].Containers) != 0 || len(nodes[2].Containers) != 0 {
		t.Error("placement leaked containers onto unassigned nodes")
	}
	if len(nodes[0].Containers) == 0 {
		t.Error("assigned node hosted nothing")
	}
}

func TestHashAndSpreadPlacement(t *testing.T) {
	fns := []string{"a", "b", "c", "d", "e"}
	hp := simulate.HashPlacement(fns, 3)
	if len(hp) != 5 {
		t.Fatal("hash placement missing functions")
	}
	for f, nodes := range hp {
		if len(nodes) != 1 || nodes[0] < 0 || nodes[0] >= 3 {
			t.Errorf("hash placement for %s = %v", f, nodes)
		}
	}
	sp := simulate.SpreadPlacement(fns, 2)
	counts := map[int]int{}
	for _, nodes := range sp {
		counts[nodes[0]]++
	}
	if counts[0] < 2 || counts[1] < 2 {
		t.Errorf("spread placement unbalanced: %v", counts)
	}
}

// TestTransformFailureInjection exercises the fault-recovery path: failed
// transformations cost the aborted attempt plus a fresh load, never a hang.
func TestTransformFailureInjection(t *testing.T) {
	names := []string{"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "vgg16-imagenet"}
	fns := testFunctions(t, names...)
	tr := workload.MixedPoisson(names, 12*time.Hour, 11)

	run := func(rate float64) (*metrics.Collector, *simulate.Simulator) {
		sim := simulate.New(simulate.Config{
			Policy:               policy.Optimus{},
			Nodes:                1,
			ContainersPerNode:    2,
			TransformFailureRate: rate,
		}, fns)
		col, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return col, sim
	}

	healthy, hs := run(0)
	faulty, fs := run(1.0)
	if hs.TransformsFailed != 0 {
		t.Errorf("healthy run failed %d transforms", hs.TransformsFailed)
	}
	if fs.TransformsFailed == 0 {
		t.Fatal("rate=1 injected no failures")
	}
	// Every request is still served.
	if faulty.Len() != healthy.Len() {
		t.Fatalf("fault run served %d of %d", faulty.Len(), healthy.Len())
	}
	// With all transforms failing, none survive as transform records.
	if faulty.KindFractions()[metrics.StartTransform] != 0 {
		t.Error("failed transforms still recorded as transforms")
	}
	// Failures make things slower, not faster.
	if faulty.MeanLatency() <= healthy.MeanLatency() {
		t.Errorf("fault run (%v) not slower than healthy (%v)", faulty.MeanLatency(), healthy.MeanLatency())
	}
	// Determinism under the same seed.
	again, as := run(1.0)
	if again.MeanLatency() != faulty.MeanLatency() || as.TransformsFailed != fs.TransformsFailed {
		t.Error("fault injection not deterministic")
	}
}

// TestLongHorizonStability runs a week of Azure-like traffic and checks
// global invariants: every request served exactly once, latencies bounded
// below by compute and the clock never regressing.
func TestLongHorizonStability(t *testing.T) {
	if testing.Short() {
		t.Skip("week-long simulation")
	}
	names := []string{
		"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet",
		"vgg16-imagenet", "densenet121-imagenet", "mobilenet-w1-imagenet",
		"squeezenet-v1.1-imagenet", "shufflenetv2-w1-imagenet",
	}
	fns := testFunctions(t, names...)
	tr := workload.AzureLike(names, 7*24*time.Hour, 99)
	sim := simulate.New(simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             2,
		ContainersPerNode: 3,
	}, fns)
	col, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != tr.Len() {
		t.Fatalf("served %d of %d", col.Len(), tr.Len())
	}
	byName := map[string]*simulate.Function{}
	for _, f := range fns {
		byName[f.Name] = f
	}
	prof := cost.CPU()
	for _, r := range col.Records() {
		if r.End < r.Start || r.Start < r.Arrival {
			t.Fatalf("time went backwards in %+v", r)
		}
		if min := prof.Compute(byName[r.Function].Model); r.Latency() < min {
			t.Fatalf("latency %v below compute floor %v for %s", r.Latency(), min, r.Function)
		}
	}
	// Containers never exceed capacity at the end of the run.
	for _, n := range sim.Nodes() {
		if len(n.Containers) > 3 {
			t.Fatalf("node %d holds %d containers, cap 3", n.ID, len(n.Containers))
		}
	}
}

// TestOnlineProfilingInSimulator drives the §6 learning loop through a full
// simulation and checks the estimator converges toward the true profile.
func TestOnlineProfilingInSimulator(t *testing.T) {
	names := []string{"resnet18-imagenet", "resnet34-imagenet", "resnet50-imagenet", "vgg16-imagenet"}
	fns := testFunctions(t, names...)
	tr := workload.MixedPoisson(names, 24*time.Hour, 13)
	sim := simulate.New(simulate.Config{
		Policy:            policy.Optimus{},
		Nodes:             1,
		ContainersPerNode: 2,
		EstimatorErr:      0.5,
		Seed:              3,
		OnlineProfiling:   0.2,
	}, fns)
	start := sim.Estimator().Miscalibration()
	if _, err := sim.Run(tr); err != nil {
		t.Fatal(err)
	}
	if sim.Estimator().Observations() == 0 {
		t.Fatal("no observations absorbed")
	}
	if got := sim.Estimator().Miscalibration(); got >= start {
		t.Errorf("miscalibration did not improve: %.3f → %.3f", start, got)
	}
	if sim.Env() == nil {
		t.Error("Env accessor broken")
	}
}

func TestNodeHelpers(t *testing.T) {
	n := &simulate.Node{ID: 0, Capacity: 2}
	if !n.HasRoom() {
		t.Error("empty node should have room")
	}
	fns := testFunctions(t, "resnet18-imagenet")
	c := &simulate.Container{ID: 1, Fn: fns[0], BusyUntil: time.Minute, LastDone: time.Minute}
	n.Containers = []*simulate.Container{c}
	if c.IdleFor(30*time.Second) != 0 {
		t.Error("busy container reported idle")
	}
	if c.IdleFor(90*time.Second) != 30*time.Second {
		t.Errorf("idle age wrong")
	}
	n.Remove(c)
	if len(n.Containers) != 0 {
		t.Error("Remove failed")
	}
	n.Remove(c) // no-op on absent container
}
