package fanout

import (
	"testing"
	"time"
)

// drive runs a tree to completion with a tiny synchronous scheduler: every
// eligible recipient starts immediately, structure loads finish instantly,
// and donations complete in assignment order, one per tick. corrupt marks
// member IDs whose completion draws the corrupt-output fault. onTick lets a
// test inject donor kills mid-wave; it runs before the tick's completion.
func drive(t *testing.T, tr *Tree, nodes []int, corrupt map[int]bool, onTick func(tick int)) time.Duration {
	t.Helper()
	now := time.Duration(0)
	var active []int // children streaming or loading, in schedule order
	schedule := func(as []Assignment) {
		for _, a := range as {
			active = append(active, a.Child)
		}
	}
	for tick := 0; tick < 10_000; tick++ {
		for {
			child, _, ok := tr.StartRecipient(nodes)
			if !ok {
				break
			}
			if a, ok := tr.StructDone(child, nil); ok {
				schedule([]Assignment{a})
			}
		}
		schedule(tr.PumpPending(nil))
		if tr.Done() {
			return now
		}
		if onTick != nil {
			onTick(tick)
			// A kill may have orphaned children; rebuild the active list
			// from live building members (copying the engine's event-drop).
			active = active[:0]
			for _, m := range tr.Members() {
				if m.State == StateBuilding && (m.phase == phaseWeights || m.phase == phaseLoad) {
					active = append(active, m.ID)
				}
			}
		}
		if len(active) == 0 {
			t.Fatalf("tree stalled at tick %d: %+v", tick, tr.Stats())
		}
		child := active[0]
		active = active[1:]
		now += time.Second
		res := tr.Complete(child, now, corrupt[child])
		// Quarantined in-flight children lose their scheduled completions.
		if len(res.Swept.Cancelled) > 0 {
			drop := make(map[int]bool, len(res.Swept.Cancelled))
			for _, id := range res.Swept.Cancelled {
				drop[id] = true
			}
			kept := active[:0]
			for _, id := range active {
				if !drop[id] {
					kept = append(kept, id)
				}
			}
			active = kept
		}
		if res.TreeDone {
			return now
		}
		schedule(tr.PumpPending(nil))
	}
	t.Fatalf("tree did not complete: %+v", tr.Stats())
	return now
}

func TestZeroFaultTreeCompletes(t *testing.T) {
	tr := New(Config{Bandwidth: 2, MaxRecipients: 16}, "fn", 16, 0)
	tr.AddSeed(0)
	nodes := []int{0, 1, 2, 3}
	drive(t, tr, nodes, nil, nil)

	st := tr.Stats()
	if st.Recipients != 16 || st.TreesCompleted != 1 {
		t.Fatalf("stats = %+v, want 16 recipients, 1 completed tree", st)
	}
	if st.Reparents != 0 || st.Quarantined != 0 || st.LoadFallbacks != 0 || st.WaveCancels != 0 {
		t.Fatalf("zero-fault run recorded resilience events: %+v", st)
	}
	if st.Waves < 2 {
		t.Fatalf("tree mode should recurse across waves, got %d", st.Waves)
	}
	warm, perNode := 0, map[int]int{}
	for _, m := range tr.Members() {
		if m.Seed {
			continue
		}
		if m.State != StateWarm {
			t.Fatalf("member %d ended %s", m.ID, m.State)
		}
		warm++
		perNode[m.Node]++
	}
	if warm != 16 {
		t.Fatalf("warm recipients = %d, want 16", warm)
	}
	for n, c := range perNode {
		if c != 4 {
			t.Fatalf("placement should spread evenly, node %d hosts %d", n, c)
		}
	}
	for _, n := range nodes {
		if tr.Streams(n) != 0 {
			t.Fatalf("node %d leaked %d donation streams", n, tr.Streams(n))
		}
	}
}

func TestIndependentModeOnlySeedsDonate(t *testing.T) {
	tr := New(Config{Bandwidth: 2, MaxRecipients: 8, Independent: true}, "fn", 8, 0)
	seed := tr.AddSeed(0)
	drive(t, tr, []int{0, 1}, nil, nil)
	for _, m := range tr.Members() {
		if m.Seed {
			continue
		}
		if m.Parent != seed {
			t.Fatalf("independent mode let member %d stream from %d, want seed %d", m.ID, m.Parent, seed)
		}
		if m.Wave != 1 {
			t.Fatalf("independent children are all wave 1, member %d is wave %d", m.ID, m.Wave)
		}
	}
	if st := tr.Stats(); st.Waves != 1 {
		t.Fatalf("independent schedule reported %d waves", st.Waves)
	}
}

func TestDonorCrashReparentsOntoAncestor(t *testing.T) {
	tr := New(Config{Bandwidth: 1, MaxRecipients: 6}, "fn", 6, 0)
	tr.AddSeed(0)
	killed := false
	drive(t, tr, []int{0, 1, 2}, nil, func(tick int) {
		if killed {
			return
		}
		// Kill the first non-seed donor that is actively streaming.
		for _, m := range tr.Members() {
			if !m.Seed && (m.State == StateWarm || m.State == StatePoisoned) && m.inflight > 0 {
				rep := tr.DonorLost(m.ID, nil, true)
				if len(rep) == 0 {
					t.Fatalf("killed donor %d had no orphans", m.ID)
				}
				for _, r := range rep {
					if r.NewDonor == m.ID {
						t.Fatalf("orphan re-parented onto the dead donor")
					}
				}
				killed = true
				return
			}
		}
	})
	if !killed {
		t.Fatal("no streaming donor ever observed")
	}
	st := tr.Stats()
	if st.DonorCrashes != 1 || st.Reparents == 0 {
		t.Fatalf("stats = %+v, want 1 donor crash with re-parents", st)
	}
	if st.TreesCompleted != 1 {
		t.Fatalf("tree should still complete after the crash: %+v", st)
	}
}

func TestCorruptOutputQuarantinesSubtree(t *testing.T) {
	tr := New(Config{Bandwidth: 2, MaxRecipients: 12}, "fn", 12, 0)
	tr.AddSeed(0)
	// Member 1 is the first recipient; poisoning it poisons whatever streams
	// from it before the wave sweep catches the unbalanced ledger.
	drive(t, tr, []int{0, 1, 2}, map[int]bool{1: true}, nil)

	st := tr.Stats()
	if st.CorruptOutputs != 1 {
		t.Fatalf("corrupt outputs = %d, want 1", st.CorruptOutputs)
	}
	if st.Quarantined == 0 {
		t.Fatalf("the poisoned member was never quarantined: %+v", st)
	}
	if st.Recipients <= 12 {
		t.Fatalf("quarantined members must be rebuilt: %d recipients for want 12", st.Recipients)
	}
	members := tr.Members()
	if members[1].State != StateQuarantined {
		t.Fatalf("member 1 ended %s, want quarantined", members[1].State)
	}
	// Lineage check: every quarantined member descends from member 1, and
	// every surviving warm replica has a clean ledger.
	warm := 0
	for _, m := range members {
		if m.Seed {
			continue
		}
		switch m.State {
		case StateQuarantined:
			root := m
			for root.Parent >= 0 {
				root = members[root.Parent]
			}
			// Member 1's own parent chain ends at -1 via the seed lineage;
			// a quarantined member either is member 1 or descends from it.
			if m.ID != 1 {
				anc := m
				for anc.Parent >= 0 && anc.ID != 1 {
					anc = members[anc.Parent]
				}
				if anc.ID != 1 {
					t.Fatalf("member %d quarantined outside member 1's subtree", m.ID)
				}
			}
		case StateWarm:
			warm++
			if m.poisonedLedger() {
				t.Fatalf("member %d is warm with an unbalanced ledger", m.ID)
			}
		case StatePoisoned:
			t.Fatalf("member %d survived poisoned — the final audit missed it", m.ID)
		}
	}
	if warm != 12 {
		t.Fatalf("clean warm replicas = %d, want 12", warm)
	}
}

func TestToFallbackCutsLineageAndCounts(t *testing.T) {
	tr := New(Config{Bandwidth: 1, MaxRecipients: 2}, "fn", 2, 0)
	tr.AddSeed(0)
	child, _, ok := tr.StartRecipient([]int{0})
	if !ok {
		t.Fatal("recipient refused")
	}
	a, ok := tr.StructDone(child, nil)
	if !ok || a.Donor != 0 {
		t.Fatalf("expected seed donation, got %+v ok=%v", a, ok)
	}
	if tr.Streams(0) != 1 {
		t.Fatalf("streams = %d, want 1", tr.Streams(0))
	}
	tr.ToFallback(child, true) // wave-deadline cancel
	if tr.Streams(0) != 0 {
		t.Fatal("fallback must release the donation stream")
	}
	res := tr.Complete(child, time.Second, false)
	if !res.Swept.Empty() {
		t.Fatalf("fallback completion swept %+v", res.Swept)
	}
	st := tr.Stats()
	if st.WaveCancels != 1 || st.LoadFallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 wave cancel + 1 load fallback", st)
	}
	m := tr.Members()[child]
	if m.State != StateWarm || m.Parent != -1 {
		t.Fatalf("fallback child = %+v, want warm with no parent", m)
	}
}

// TestStaleCompleteAfterReparentRefused pins the parked-orphan hole: when a
// donor dies and no healthy member can adopt the orphan, the completion
// scheduled for the dead donation must not be able to promote the still-parked
// child — Complete reports Completed=false and changes nothing.
func TestStaleCompleteAfterReparentRefused(t *testing.T) {
	tr := New(Config{Bandwidth: 1, MaxRecipients: 2}, "fn", 2, 0)
	seed := tr.AddSeed(0)
	child, _, ok := tr.StartRecipient([]int{0, 1})
	if !ok {
		t.Fatal("recipient refused")
	}
	if a, ok := tr.StructDone(child, nil); !ok || a.Donor != seed {
		t.Fatalf("expected seed donation, got %+v ok=%v", a, ok)
	}
	rep := tr.DonorLost(seed, nil, true)
	if len(rep) != 1 || rep[0].Child != child || rep[0].NewDonor != -1 {
		t.Fatalf("orphan should park with no adopter, got %+v", rep)
	}
	// The completion event scheduled for the dead donation fires anyway (the
	// engine drops it by generation; the tree must also refuse it).
	res := tr.Complete(child, time.Second, false)
	if res.Completed || res.TreeDone || !res.Swept.Empty() {
		t.Fatalf("stale completion was accepted: %+v", res)
	}
	if m := tr.Members()[child]; m.State != StateBuilding || m.phase != phasePending {
		t.Fatalf("parked orphan mutated by stale completion: state=%s phase=%d", m.State, m.phase)
	}
	if st := tr.Stats(); st.Recipients != 0 {
		t.Fatalf("stale completion tallied a recipient: %+v", st)
	}
}

func TestTwoRunsAreIdentical(t *testing.T) {
	run := func() ([]Member, time.Duration) {
		tr := New(Config{Bandwidth: 2, MaxRecipients: 16}, "fn", 16, 0)
		tr.AddSeed(0)
		tr.AddSeed(1)
		at := drive(t, tr, []int{0, 1, 2, 3}, map[int]bool{4: true}, nil)
		return tr.Members(), at
	}
	m1, t1 := run()
	m2, t2 := run()
	if t1 != t2 || len(m1) != len(m2) {
		t.Fatalf("runs diverged: %v/%d vs %v/%d members", t1, len(m1), t2, len(m2))
	}
	for i := range m1 {
		a, b := m1[i], m2[i]
		if a.ID != b.ID || a.Node != b.Node || a.Parent != b.Parent ||
			a.Wave != b.Wave || a.State != b.State {
			t.Fatalf("member %d diverged: %+v vs %+v", i, a, b)
		}
	}
}
