package ring

import (
	"fmt"
	"testing"
)

// testKeys builds K deterministic keys shaped like the control plane's
// function names and plan pair keys.
func testKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("fn-%04d", i)
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Owner(k)
		if !ok {
			panic("owner on empty ring")
		}
		out[k] = m
	}
	return out
}

// TestOwnershipDeterministicAcrossRuns: two rings built independently — in
// different insertion orders — from the same (seed, vnodes, member set) must
// agree on every key's owner, for every vnode count in the table. This is
// the property the multi-gateway control plane rests on: each gateway builds
// its own ring and they all route identically.
func TestOwnershipDeterministicAcrossRuns(t *testing.T) {
	keys := testKeys(2000)
	members := []string{"gw-0", "gw-1", "gw-2", "gw-3", "gw-4"}
	for _, vnodes := range []int{1, 16, 64, 128, 256} {
		t.Run(fmt.Sprintf("vnodes=%d", vnodes), func(t *testing.T) {
			a := New(7, vnodes)
			for _, m := range members {
				a.Add(m)
			}
			b := New(7, vnodes)
			for i := range members {
				b.Add(members[len(members)-1-i]) // reverse insertion order
			}
			oa, ob := owners(a, keys), owners(b, keys)
			for _, k := range keys {
				if oa[k] != ob[k] {
					t.Fatalf("key %s: owner %s vs %s across builds", k, oa[k], ob[k])
				}
			}
		})
	}
}

// TestSeedShufflesOwnership: different seeds must produce different
// ownership maps (the seed is part of the hash, not decoration).
func TestSeedShufflesOwnership(t *testing.T) {
	keys := testKeys(500)
	build := func(seed int64) map[string]string {
		r := New(seed, 64)
		for i := 0; i < 4; i++ {
			r.Add(fmt.Sprintf("gw-%d", i))
		}
		return owners(r, keys)
	}
	a, b := build(1), build(2)
	same := 0
	for _, k := range keys {
		if a[k] == b[k] {
			same++
		}
	}
	if same == len(keys) {
		t.Error("seeds 1 and 2 produced identical ownership; the seed is not mixed into the hash")
	}
}

// TestJoinMovesBoundedKeysOnlyToJoiner: adding the (N+1)th member must (a)
// move keys only onto the joiner — no key changes owner between two
// preexisting members — and (b) move at most ceil(K/(N+1)) + eps keys, where
// eps is the consistent-hashing variance allowance (half the fair share at
// the table's vnode counts). Table over vnode counts and member counts.
func TestJoinMovesBoundedKeysOnlyToJoiner(t *testing.T) {
	keys := testKeys(10000)
	k := len(keys)
	for _, vnodes := range []int{64, 128, 256} {
		for n := 1; n <= 7; n++ { // n preexisting members, then one join
			t.Run(fmt.Sprintf("vnodes=%d/members=%d", vnodes, n), func(t *testing.T) {
				r := New(3, vnodes)
				for i := 0; i < n; i++ {
					r.Add(fmt.Sprintf("gw-%d", i))
				}
				before := owners(r, keys)
				joiner := fmt.Sprintf("gw-%d", n)
				r.Add(joiner)
				after := owners(r, keys)

				moved := 0
				for _, key := range keys {
					if before[key] == after[key] {
						continue
					}
					moved++
					if after[key] != joiner {
						t.Fatalf("key %s moved %s→%s, not to the joiner %s",
							key, before[key], after[key], joiner)
					}
				}
				fair := (k + n) / (n + 1) // ceil(K/(N+1))
				eps := fair / 2
				if moved > fair+eps {
					t.Errorf("join moved %d keys, want <= ceil(%d/%d)+eps = %d",
						moved, k, n+1, fair+eps)
				}
				if moved == 0 {
					t.Error("join moved no keys; the joiner owns nothing")
				}
			})
		}
	}
}

// TestLeaveMovesOnlyLeaversKeys: removing a member must change ownership for
// exactly the keys it owned — every other key keeps its owner (the minimal
// key-movement guarantee the drain handoff relies on).
func TestLeaveMovesOnlyLeaversKeys(t *testing.T) {
	keys := testKeys(10000)
	for _, vnodes := range []int{64, 128, 256} {
		t.Run(fmt.Sprintf("vnodes=%d", vnodes), func(t *testing.T) {
			r := New(5, vnodes)
			for i := 0; i < 5; i++ {
				r.Add(fmt.Sprintf("gw-%d", i))
			}
			before := owners(r, keys)
			const leaver = "gw-2"
			ownedByLeaver := 0
			for _, key := range keys {
				if before[key] == leaver {
					ownedByLeaver++
				}
			}
			r.Remove(leaver)
			after := owners(r, keys)
			moved := 0
			for _, key := range keys {
				if before[key] != after[key] {
					moved++
					if before[key] != leaver {
						t.Fatalf("key %s moved %s→%s though %s left",
							key, before[key], after[key], leaver)
					}
				}
				if after[key] == leaver {
					t.Fatalf("key %s still owned by removed member", key)
				}
			}
			if moved != ownedByLeaver {
				t.Errorf("leave moved %d keys, the leaver owned %d", moved, ownedByLeaver)
			}
		})
	}
}

// TestJoinThenLeaveRestoresOwnership: removing the member just added must
// restore the exact prior ownership map (ownership is a pure function of the
// member set, not of membership history).
func TestJoinThenLeaveRestoresOwnership(t *testing.T) {
	keys := testKeys(3000)
	r := New(9, 128)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("gw-%d", i))
	}
	before := owners(r, keys)
	r.Add("gw-extra")
	r.Remove("gw-extra")
	after := owners(r, keys)
	for _, k := range keys {
		if before[k] != after[k] {
			t.Fatalf("key %s: owner %s before join/leave, %s after", k, before[k], after[k])
		}
	}
}

// TestBalanceWithinTolerance: at DefaultVNodes, an 8-member ring spreads 10k
// keys so no member owns more than twice the fair share (the balance level
// the gateway bench's makespan scaling depends on).
func TestBalanceWithinTolerance(t *testing.T) {
	keys := testKeys(10000)
	r := New(1, 0) // 0 → DefaultVNodes
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("gw-%d", i))
	}
	counts := r.Counts(keys)
	fair := len(keys) / 8
	for m, c := range counts {
		if c > 2*fair {
			t.Errorf("member %s owns %d of %d keys (fair share %d)", m, c, len(keys), fair)
		}
		if c == 0 {
			t.Errorf("member %s owns nothing", m)
		}
	}
}

// TestEmptyAndIdempotent: Owner on an empty ring reports !ok; double Add and
// double Remove are no-ops.
func TestEmptyAndIdempotent(t *testing.T) {
	r := New(1, 8)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring claimed an owner")
	}
	r.Add("a")
	r.Add("a")
	if got := len(r.points); got != 8 {
		t.Errorf("double Add left %d points, want 8", got)
	}
	r.Remove("b") // absent
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Errorf("ring not empty after removals: %d members, %d points", r.Len(), len(r.points))
	}
}
