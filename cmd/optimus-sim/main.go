// Command optimus-sim runs one configurable cluster simulation and prints
// the resulting service-time statistics, start-kind shares, and latency
// breakdown.
//
// Example:
//
//	optimus-sim -policy optimus -nodes 4 -containers 4 -workload azure -horizon 24h
//	optimus-sim -policy openwhisk -workload poisson -functions 30
//	optimus-sim -fault-transform 0.2 -fault-crash 0.02 -seed 3
//	optimus-sim -chaos -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	optimus "repro"
	"repro/internal/cliutil"
	"repro/internal/cost"
	"repro/internal/experiments"
)

// traceFunctions lists a trace's distinct function names.
func traceFunctions(t *optimus.Trace) []string { return t.Functions() }

func main() {
	var (
		policyName = flag.String("policy", "optimus", "container policy: optimus|openwhisk|pagurus|tetris")
		nodes      = flag.Int("nodes", 4, "worker nodes")
		slots      = flag.Int("containers", 4, "containers per node")
		fnCount    = flag.Int("functions", 26, "functions to deploy from the zoos")
		wl         = flag.String("workload", "poisson", "workload: poisson|azure")
		horizon    = flag.Duration("horizon", 24*time.Hour, "workload horizon")
		gpu        = flag.Bool("gpu", false, "GPU hardware profile")
		balancerOn = flag.Bool("balancer", true, "use the K-medoids model-sharing-aware placement")
		verify     = flag.Bool("verify", false, "execute and verify every transformation plan")
		seed       = flag.Int64("seed", 1, "random seed")
		nodeMB     = flag.Int("node-memory-mb", 0, "node memory bound (0 = slot-based)")
		ctrMB      = flag.Int("container-memory-mb", 0, "fixed container grant; 0 with node memory = fine-grained (§6)")
		online     = flag.Float64("online-profiling", 0, "EWMA rate for online profile refinement (§6)")
		profErr    = flag.Float64("profiling-error", 0, "relative error injected into offline profiling")
		failRate   = flag.Float64("transform-failures", 0, "inject this fraction of failed transformations (alias for -fault-transform)")
		watchdog   = flag.Float64("watchdog", 0, "cancel transforms at this multiple of their planned cost (≤1 disables)")
		brkN       = flag.Int("breaker-threshold", 0, "open a pair's circuit breaker after N consecutive transform failures (0 disables)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "open-breaker wait before a half-open probe (default 5m)")
		maxRetries = flag.Int("max-retries", 0, "crash re-dispatch budget per request (0 = default 2, negative = none)")
		chaos      = flag.Bool("chaos", false, "run the chaos fault-rate sweep and exit")
		chaosRates = flag.String("chaos-rates", "", "comma-separated fault rates for -chaos (default 0,0.05,0.1,0.2,0.4)")
		recovery   = flag.Bool("recovery", false, "run the supervised-recovery sweep (breaker/watchdog on vs off) and exit")
		quick      = flag.Bool("quick", false, "shrink the -chaos/-recovery sweeps for fast runs")
		perFn      = flag.Int("per-function", 0, "print per-function stats for the N slowest functions")
		shards     = flag.Int("replay-shards", 1, "parallel replay workers when the placement partitions the cluster (0 = GOMAXPROCS, 1 = serial)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		saveTrace  = flag.String("save-trace", "", "write the generated workload to this CSV file")
		loadTrace  = flag.String("load-trace", "", "replay a workload from this CSV file instead of generating one")
		azureTrace = flag.String("azure-trace", "", "replay a real Azure Functions invocations CSV (per-minute counts; deploys one function per trace row)")
	)
	ff := cliutil.RegisterFaultFlags(flag.CommandLine, false)
	rf := cliutil.RegisterResilienceFlags(flag.CommandLine)
	fo := cliutil.RegisterFanoutFlags(flag.CommandLine)
	rp := cliutil.RegisterReplayFlags(flag.CommandLine)
	flag.Parse()

	if err := cliutil.ValidateProbs(map[string]float64{"-transform-failures": *failRate}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := ff.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := rf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := fo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := rp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *chaos || *recovery {
		var rates []float64
		if *chaosRates != "" {
			var err error
			rates, err = cliutil.ParseChaosRates(*chaosRates)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		o := experiments.Options{Seed: *seed, Quick: *quick}
		if *gpu {
			o.Profile = cost.GPU()
		}
		if *recovery {
			fmt.Println(experiments.Recovery(o, rates, *horizon).Render())
		} else {
			fmt.Println(experiments.Chaos(o, rates, *horizon).Render())
		}
		return
	}

	hw := optimus.CPU
	if *gpu {
		hw = optimus.GPU
	}
	sysCfg := optimus.SystemConfig{
		Nodes:             *nodes,
		ContainersPerNode: *slots,
		Hardware:          hw,
		Policy:            optimus.PolicyName(*policyName),
		UseBalancer:       *balancerOn,
		VerifyTransforms:  *verify,
		Seed:              *seed,
		NodeMemoryMB:      *nodeMB,
		ContainerMemoryMB: *ctrMB,
		OnlineProfiling:   *online,
		ProfilingError:    *profErr,
		TransformFailures: *failRate,
		Faults:            ff.Rates(),
		MaxRetries:        *maxRetries,
		WatchdogFactor:    *watchdog,
		BreakerThreshold:  *brkN,
		BreakerCooldown:   *brkCool,
		Health:            rf.HealthConfig(),
		Retry:             rf.BackoffConfig(),
		Hedge:             rf.HedgeConfig(),
		Fanout:            fo.Config(),
	}
	sys := optimus.NewSystem(sysCfg)

	img, bert := optimus.Imgclsmob(), optimus.BERTZoo()
	names := append(img.SortedByParams(), bert.SortedByParams()...)
	if *fnCount > len(names) {
		*fnCount = len(names)
	}
	// Deploy a spread of the zoos: every k-th model by size, so the set
	// mixes tiny and huge models like a real tenant population.
	step := len(names) / *fnCount
	if step == 0 {
		step = 1
	}
	deployed := 0
	for i := 0; i < len(names) && deployed < *fnCount; i += step {
		var m *optimus.Model
		if g, err := img.Get(names[i]); err == nil {
			m = g
		} else {
			m = bert.MustGet(names[i])
		}
		sys.MustRegister(names[i], m)
		deployed++
	}

	var trace *optimus.Trace
	if *azureTrace != "" {
		f, err := os.Open(*azureTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err = optimus.ReadAzureInvocations(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Bind each trace function round-robin to zoo models; the trace
		// defines demand, the zoo defines structure.
		zooNames := sys.Functions()
		fresh := optimus.NewSystem(sysCfg)
		img2 := optimus.Imgclsmob()
		for i, fn := range traceFunctions(trace) {
			base := zooNames[i%len(zooNames)]
			m, err := img2.Get(base)
			if err != nil {
				m = optimus.BERTZoo().MustGet(base)
			}
			fresh.MustRegister(fn, m)
		}
		sys = fresh
		deployed = len(traceFunctions(trace))
	} else if *loadTrace != "" {
		f, err := os.Open(*loadTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err = optimus.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		switch *wl {
		case "poisson":
			trace = optimus.MixedPoissonTrace(sys.Functions(), *horizon, *seed)
		case "azure":
			trace = optimus.AzureTrace(sys.Functions(), *horizon, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			os.Exit(2)
		}
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := optimus.WriteTrace(f, trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	fmt.Printf("policy=%s nodes=%d containers/node=%d functions=%d workload=%s horizon=%v requests=%d\n",
		*policyName, *nodes, *slots, deployed, *wl, *horizon, trace.Len())
	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	if rp.Streaming() {
		// Streaming replay keeps no per-request records: the summary is
		// mergeable aggregates plus sketched percentiles. -replay-shards
		// doubles as the windowed-replay worker bound.
		var srep *optimus.StreamReport
		if w := *rp.Windows; w > 0 {
			srep, err = sys.RunWindowed(trace, w, *shards)
		} else {
			srep, err = sys.RunStream(trace)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulation failed:", err)
			os.Exit(1)
		}
		if ws := srep.WindowSummary(); ws != "" {
			fmt.Println(ws)
		}
		fmt.Println(srep.Summary())
		if fs := srep.FaultSummary(); fs != "" {
			fmt.Println(fs)
		}
		br := srep.Metrics.MeanBreakdown()
		fmt.Printf("mean breakdown: wait %v, init %v, load %v, compute %v\n", br.Wait, br.Init, br.Load, br.Compute)
		if *verify {
			fmt.Printf("transformations executed & verified: %d\n", srep.Verified)
		}
		if *perFn > 0 {
			fmt.Println("per-function stats unavailable in streaming mode (no records retained)")
		}
		fmt.Printf("simulated %v of cluster time in %v\n", *horizon, time.Since(start).Round(time.Millisecond))
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	var rep *optimus.Report
	if *shards == 1 {
		rep, err = sys.Run(trace)
	} else {
		rep, err = sys.RunSharded(trace, *shards)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		os.Exit(1)
	}
	if *shards != 1 {
		if sh := rep.Sharding; sh.Sharded() {
			fmt.Printf("sharded replay: %d shards on %d workers\n", sh.Shards, sh.Workers)
		} else {
			fmt.Printf("serial replay (%s)\n", sh.SerialReason)
		}
	}
	fmt.Println(rep.Summary())
	if fs := rep.FaultSummary(); fs != "" {
		fmt.Println(fs)
	}
	if fs := rep.FanoutSummary(); fs != "" {
		fmt.Println(fs)
	}
	br := rep.MeanBreakdown()
	fmt.Printf("mean breakdown: wait %v, init %v, load %v, compute %v\n", br.Wait, br.Init, br.Load, br.Compute)
	if *verify {
		fmt.Printf("transformations executed & verified: %d\n", rep.Verified)
	}
	if *perFn > 0 {
		type row struct {
			name string
			mean time.Duration
			n    int
		}
		var rows []row
		for name, col := range rep.PerFunction() {
			rows = append(rows, row{name, col.MeanLatency(), col.Len()})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].mean > rows[j].mean })
		if *perFn > len(rows) {
			*perFn = len(rows)
		}
		fmt.Printf("slowest %d functions by mean service time:\n", *perFn)
		for _, r := range rows[:*perFn] {
			fmt.Printf("  %-28s %10v over %d requests\n", r.name, r.mean.Round(time.Millisecond), r.n)
		}
	}
	fmt.Printf("simulated %v of cluster time in %v\n", *horizon, time.Since(start).Round(time.Millisecond))
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
