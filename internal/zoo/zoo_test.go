package zoo

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestImgclsmobSize pins the zoo to the 389 models reported in §8.1.
func TestImgclsmobSize(t *testing.T) {
	r := Imgclsmob()
	if r.Len() != 389 {
		t.Fatalf("Imgclsmob has %d models, want 389", r.Len())
	}
	if len(r.Names()) != 389 {
		t.Fatalf("Names() returned %d entries", len(r.Names()))
	}
}

// TestImgclsmobAllValid builds every model in the zoo and validates it.
func TestImgclsmobAllValid(t *testing.T) {
	if testing.Short() {
		t.Skip("building 389 models is slow in -short mode")
	}
	r := Imgclsmob()
	for _, name := range r.Names() {
		g, err := r.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if g.Name != name {
			t.Errorf("model %q reports name %q", name, g.Name)
		}
		st := g.Stats()
		if st.Params <= 0 {
			t.Errorf("model %q has no parameters", name)
		}
		if st.Ops < 10 {
			t.Errorf("model %q has only %d ops", name, st.Ops)
		}
	}
}

// TestParamCountsMatchPaper checks Fig 2c: VGG11/16/19 ≈ 132.9/138.4/143.7M
// and ResNet50/101/152 ≈ 25.6/44.7/60.4M parameters (±3 %).
func TestParamCountsMatchPaper(t *testing.T) {
	r := Imgclsmob()
	want := map[string]float64{
		"vgg11-imagenet":     132.9e6,
		"vgg16-imagenet":     138.4e6,
		"vgg19-imagenet":     143.7e6,
		"resnet50-imagenet":  25.6e6,
		"resnet101-imagenet": 44.7e6,
		"resnet152-imagenet": 60.4e6,
	}
	for name, w := range want {
		g := r.MustGet(name)
		got := float64(g.Stats().Params)
		if math.Abs(got-w)/w > 0.03 {
			t.Errorf("%s has %.1fM params, paper reports %.1fM", name, got/1e6, w/1e6)
		}
	}
}

// TestResNetLayerScaling pins the §3.1 observation that ResNet101 has about
// twice the layers of ResNet50, and the §4.4 observation that ResNet101 has
// ~347 operations of which ~101 carry weights.
func TestResNetLayerScaling(t *testing.T) {
	r := Imgclsmob()
	r50 := r.MustGet("resnet50-imagenet").Stats()
	r101 := r.MustGet("resnet101-imagenet").Stats()
	if ratio := float64(r101.Ops) / float64(r50.Ops); ratio < 1.7 || ratio > 2.3 {
		t.Errorf("ResNet101/ResNet50 op ratio = %.2f, want ≈ 2", ratio)
	}
	if r101.Ops < 300 || r101.Ops > 420 {
		t.Errorf("ResNet101 has %d ops, paper reports ≈ 347", r101.Ops)
	}
	// "only 101 operations have weights" counts conv/dense; including
	// batch-norms our weighted count is higher, but conv+dense must be ≈ 104.
	g := r.MustGet("resnet101-imagenet")
	convDense := 0
	for _, op := range g.Ops() {
		if op.Type == model.OpConv2D || op.Type == model.OpDense {
			convDense++
		}
	}
	if convDense < 100 || convDense > 110 {
		t.Errorf("ResNet101 has %d conv+dense ops, want ≈ 104", convDense)
	}
}

// TestWeightedOpsMinority pins the §4.4 observation that most operations in
// a model do not contain weights, for conv/dense specifically.
func TestWeightedOpsMinority(t *testing.T) {
	r := Imgclsmob()
	for _, name := range []string{"resnet101-imagenet", "densenet121-imagenet", "mobilenetv2-w1-imagenet"} {
		g := r.MustGet(name)
		convDense := 0
		for _, op := range g.Ops() {
			if op.Type == model.OpConv2D || op.Type == model.OpDense {
				convDense++
			}
		}
		if frac := float64(convDense) / float64(g.NumOps()); frac > 0.5 {
			t.Errorf("%s: conv+dense fraction %.2f, want < 0.5", name, frac)
		}
	}
}

func TestDatasetVariantsShareStructureNotWeights(t *testing.T) {
	r := Imgclsmob()
	a := r.MustGet("resnet50-cifar10")
	b := r.MustGet("resnet50-svhn")
	// Same class count (10) → identical structure, different weights.
	if !a.StructuralEqual(b) {
		t.Fatal("resnet50-cifar10 and resnet50-svhn should be structurally equal")
	}
	if a.Equal(b) {
		t.Fatal("different datasets must not share weights")
	}
	// Different class count → structure differs only in the classifier.
	c := r.MustGet("resnet50-cifar100")
	if a.StructuralEqual(c) {
		t.Fatal("cifar10 vs cifar100 classifier widths should differ")
	}
}

func TestRegistryErrors(t *testing.T) {
	r := Imgclsmob()
	if _, err := r.Get("not-a-model"); err == nil {
		t.Error("Get accepted unknown model")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	nr := NewRegistry()
	nr.Register("x", func() *model.Graph { return nil })
	nr.Register("x", func() *model.Graph { return nil })
}

func TestRegistryCaches(t *testing.T) {
	r := Imgclsmob()
	a := r.MustGet("vgg16-imagenet")
	b := r.MustGet("vgg16-imagenet")
	if a != b {
		t.Error("Get should memoize")
	}
}

func TestRepresentative21(t *testing.T) {
	cnn, bert := Representative21()
	if len(cnn)+len(bert) != 21 {
		t.Fatalf("Representative21 returned %d models, want 21", len(cnn)+len(bert))
	}
	img, bz := Imgclsmob(), BERTZoo()
	for _, n := range cnn {
		if _, err := img.Get(n); err != nil {
			t.Errorf("CNN representative %q: %v", n, err)
		}
	}
	for _, n := range bert {
		if _, err := bz.Get(n); err != nil {
			t.Errorf("BERT representative %q: %v", n, err)
		}
	}
}

func TestBERTZoo(t *testing.T) {
	r := BERTZoo()
	if r.Len() != 10 {
		t.Fatalf("BERT zoo has %d models, want 10", r.Len())
	}
	base := r.MustGet("bert-base-uncased")
	st := base.Stats()
	// BERT-Base ≈ 110M parameters.
	if st.Params < 100e6 || st.Params > 120e6 {
		t.Errorf("bert-base-uncased has %.1fM params, want ≈ 110M", float64(st.Params)/1e6)
	}
	tiny := r.MustGet("bert-tiny").Stats()
	if tiny.Params >= st.Params/10 {
		t.Errorf("bert-tiny (%.1fM) should be ≪ bert-base", float64(tiny.Params)/1e6)
	}
	// Cased and uncased differ only in the embedding vocabulary.
	cased := r.MustGet("bert-base-cased")
	if cased.NumOps() != base.NumOps() {
		t.Error("cased and uncased should have identical op counts")
	}
	if cased.StructuralEqual(base) {
		t.Error("cased/uncased vocab difference should show in structure")
	}
}

// TestBERTDownstreamShareBase verifies §5.2 Example 2: downstream-task
// variants share the pre-trained base weights, so only head ops differ.
func TestBERTDownstreamShareBase(t *testing.T) {
	r := BERTZoo()
	sc := r.MustGet("bert-base-sc")
	qa := r.MustGet("bert-base-qa")
	base := r.MustGet("bert-base-uncased")

	// Every encoder op of SC must have a weight-identical counterpart in the
	// plain base model.
	baseIDs := make(map[uint64]bool)
	for _, op := range base.Ops() {
		if op.HasWeights() {
			baseIDs[op.WeightsID] = true
		}
	}
	shared, headOps := 0, 0
	for _, op := range sc.Ops() {
		if !op.HasWeights() {
			continue
		}
		if baseIDs[op.WeightsID] {
			shared++
		} else {
			headOps++
		}
	}
	if shared == 0 {
		t.Fatal("bert-base-sc shares no weights with bert-base-uncased")
	}
	if headOps == 0 || headOps > 4 {
		t.Fatalf("bert-base-sc has %d task-specific weighted ops, want 1-4", headOps)
	}
	// QA has a different head than SC but the same shared base.
	if sc.Equal(qa) {
		t.Error("sc and qa variants should differ")
	}
}

func TestBERTTransformerOpCensus(t *testing.T) {
	r := BERTZoo()
	g := r.MustGet("bert-base-uncased")
	st := g.Stats()
	// 12 blocks × (Q,K,V,O) = 48 attention projections.
	for _, typ := range []model.OpType{model.OpQuery, model.OpKey, model.OpValue, model.OpAttnOutput} {
		if st.ByType[typ] != 12 {
			t.Errorf("%v count = %d, want 12", typ, st.ByType[typ])
		}
	}
	if st.ByType[model.OpLogit] != 12 || st.ByType[model.OpAttend] != 12 {
		t.Error("logit/attend count should be 12")
	}
	if st.ByType[model.OpEmbedding] != 3 {
		t.Errorf("embedding count = %d, want 3 (token/pos/segment)", st.ByType[model.OpEmbedding])
	}
	if st.ByType[model.OpLayerNorm] != 25 {
		t.Errorf("layernorm count = %d, want 25 (1 + 2×12)", st.ByType[model.OpLayerNorm])
	}
	// TC head carries a CRF (§5.2 case 4).
	tc := r.MustGet("bert-base-tc")
	if tc.Stats().ByType[model.OpCRF] != 1 {
		t.Error("bert-base-tc should contain a CRF op")
	}
}

func TestNASBenchArchDecoding(t *testing.T) {
	if _, err := NASBenchArch(-1); err == nil {
		t.Error("accepted negative index")
	}
	if _, err := NASBenchArch(NASBenchSize); err == nil {
		t.Error("accepted out-of-range index")
	}
	arch0, err := NASBenchArch(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range arch0 {
		if op != nasNone {
			t.Error("index 0 should decode to all-none")
		}
	}
	// Index 1+5+25+... digit order: index 7 = 12 base 5 → edge0=2, edge1=1.
	arch7, _ := NASBenchArch(7)
	if arch7[0] != nasConv1 || arch7[1] != nasSkip {
		t.Errorf("index 7 decoded to %v", arch7)
	}
	// Round-trip distinctness: distinct indexes yield distinct archs.
	seen := make(map[[6]nasOp]bool)
	for i := 0; i < 1000; i++ {
		a, _ := NASBenchArch(i)
		if seen[a] {
			t.Fatalf("duplicate arch at index %d", i)
		}
		seen[a] = true
	}
}

func TestNASBenchString(t *testing.T) {
	arch, _ := NASBenchArch(7)
	s := NASBenchString(arch)
	if !strings.Contains(s, "nor_conv_1x1~0") || !strings.Contains(s, "skip_connect~0") {
		t.Errorf("arch string %q missing expected ops", s)
	}
	if strings.Count(s, "~") != 6 {
		t.Errorf("arch string %q should mention 6 edges", s)
	}
}

func TestNASBenchModels(t *testing.T) {
	for _, idx := range []int{0, 1, 7, 777, 15624} {
		g, err := NASBenchModel(idx, 5, 10)
		if err != nil {
			t.Fatalf("NASBenchModel(%d): %v", idx, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("NASBenchModel(%d) invalid: %v", idx, err)
		}
		if g.Family != "nasbench" {
			t.Errorf("family = %q", g.Family)
		}
	}
	if _, err := NASBenchModel(NASBenchSize, 5, 10); err == nil {
		t.Error("accepted out-of-range index")
	}
	// All-none cell (index 0) must still be a connected valid graph, and a
	// conv-heavy arch must have more parameters.
	g0, _ := NASBenchModel(0, 5, 10)
	allConv3 := 3 + 3*5 + 3*25 + 3*125 + 3*625 + 3*3125 // digits all = 3
	gc, err := NASBenchModel(allConv3, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Stats().Params <= g0.Stats().Params {
		t.Error("all-conv arch should outweigh all-none arch")
	}
}

// TestNASBenchDeterminism: same index twice gives Equal graphs.
func TestNASBenchDeterminism(t *testing.T) {
	a, _ := NASBenchModel(4242, 5, 10)
	b, _ := NASBenchModel(4242, 5, 10)
	if !a.Equal(b) {
		t.Fatal("NASBenchModel not deterministic")
	}
}

func TestFamilyDiversity(t *testing.T) {
	r := Imgclsmob()
	fams := make(map[string]int)
	for _, n := range r.Names() {
		fams[r.MustGet(n).Family]++
	}
	if len(fams) < 15 {
		t.Errorf("zoo spans %d families, want ≥ 15", len(fams))
	}
}

func TestMergeRegistries(t *testing.T) {
	all := NewRegistry()
	all.Merge(BERTZoo())
	if all.Len() != 10 {
		t.Fatalf("merged registry has %d models", all.Len())
	}
	g := all.MustGet("bert-tiny")
	if g == nil || g.Name != "bert-tiny" {
		t.Fatal("merged Get failed")
	}
}

func TestSortedByParams(t *testing.T) {
	r := BERTZoo()
	names := r.SortedByParams()
	if len(names) != 10 {
		t.Fatalf("SortedByParams returned %d names", len(names))
	}
	var prev int64 = -1
	for _, n := range names {
		p := r.MustGet(n).Stats().Params
		if p < prev {
			t.Fatalf("SortedByParams out of order at %s", n)
		}
		prev = p
	}
	if names[0] != "bert-tiny" {
		t.Errorf("smallest BERT should be bert-tiny, got %s", names[0])
	}
}

func TestRNNZoo(t *testing.T) {
	r := RNNZoo()
	if r.Len() != 6 {
		t.Fatalf("RNN zoo has %d models, want 6", r.Len())
	}
	for _, n := range RNNNames() {
		g, err := r.Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if g.Family != "rnn" {
			t.Errorf("%s family = %q", n, g.Family)
		}
	}
	lstm := r.MustGet("lstm-2x256").Stats()
	gru := r.MustGet("gru-2x256").Stats()
	// LSTM has 4 gates vs GRU's 3, so more recurrent weights; embeddings
	// dominate both, so compare the recurrent ops directly.
	if lstm.ByType[model.OpLSTM] != 2 || gru.ByType[model.OpGRU] != 2 {
		t.Errorf("recurrent op counts wrong: %v / %v", lstm.ByType, gru.ByType)
	}
	if lstm.Params <= gru.Params {
		t.Errorf("lstm (%d) should outweigh gru (%d)", lstm.Params, gru.Params)
	}
}

func TestRNNRejectsBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RNN accepted a non-recurrent cell type")
		}
	}()
	RNN(RNNConfig{Name: "x", Cell: model.OpConv2D, Layers: 1, Hidden: 8, Vocab: 10, Classes: 2})
}

// TestNewFamiliesValid builds one representative from each of the newer
// families and sanity-checks their scale.
func TestNewFamiliesValid(t *testing.T) {
	r := Imgclsmob()
	cases := map[string][2]float64{ // name -> [min, max] params in millions
		"googlenet-imagenet":       {5, 9},
		"nin-imagenet":             {2, 12},
		"ghostnet-w1-imagenet":     {2, 10},
		"regnetx-1.6gf-imagenet":   {5, 16},
		"mnasnet-a1-imagenet":      {3, 8},
		"res2net50-imagenet":       {14, 30},
		"efficientnet-b0-imagenet": {3, 9},
		"efficientnet-b7-imagenet": {25, 90},
	}
	for name, band := range cases {
		g, err := r.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		p := float64(g.Stats().Params) / 1e6
		if p < band[0] || p > band[1] {
			t.Errorf("%s has %.1fM params, want in [%.0f, %.0f]M", name, p, band[0], band[1])
		}
	}
	// MnasNet-A1's SE blocks add parameters over B1.
	a1 := r.MustGet("mnasnet-a1-imagenet").Stats().Params
	b1 := r.MustGet("mnasnet-b1-imagenet").Stats().Params
	if a1 <= b1 {
		t.Errorf("mnasnet-a1 (%d) should outweigh b1 (%d)", a1, b1)
	}
}

func TestGPTZoo(t *testing.T) {
	r := GPTZoo()
	if r.Len() != 3 {
		t.Fatalf("GPT zoo has %d models, want 3", r.Len())
	}
	gpt2 := r.MustGet("gpt2")
	st := gpt2.Stats()
	// GPT-2 small ≈ 124M parameters plus the untied LM head (~39M here).
	if st.Params < 110e6 || st.Params > 180e6 {
		t.Errorf("gpt2 has %.1fM params, want ≈ 124-165M", float64(st.Params)/1e6)
	}
	if st.ByType[model.OpQuery] != 12 || st.ByType[model.OpLayerNorm] != 25 {
		t.Errorf("gpt2 op census wrong: %v", st.ByType)
	}
	// DistilGPT-2 shares the teacher's embedding scope.
	distil := r.MustGet("distilgpt2")
	sharesEmb := false
	for _, op := range distil.Ops() {
		if op.Type == model.OpEmbedding {
			for _, t2 := range gpt2.Ops() {
				if t2.Type == model.OpEmbedding && t2.WeightsID == op.WeightsID {
					sharesEmb = true
				}
			}
		}
	}
	if !sharesEmb {
		t.Error("distilgpt2 should share gpt2's embeddings")
	}
}
