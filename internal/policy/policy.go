// Package policy implements the container-management policies compared in
// §8: the OpenWhisk baseline (cold start from scratch), Pagurus
// (inter-function container sharing that saves sandbox/runtime init),
// Tetris (tensor/operation sharing across co-located containers), and
// Optimus (inter-function model transformation).
//
// All policies share the simulator's warm-start fast path and the 10-minute
// keep-alive; they differ only in what happens when a function has no warm
// container.
package policy

import (
	"time"

	"repro/internal/metaop"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/simulate"
)

// warmOrNil returns the shared warm-start decision when available.
func warmOrNil(n *simulate.Node, fn *simulate.Function, now time.Duration) (simulate.Decision, bool) {
	if c := n.WarmIdle(fn, now); c != nil {
		return simulate.Decision{Kind: metrics.StartWarm, Reuse: c}, true
	}
	return simulate.Decision{}, false
}

// OpenWhisk is the traditional baseline: warm start when possible, otherwise
// a full cold start (sandbox + runtime init, then the whole model load).
type OpenWhisk struct{}

// Name implements simulate.Policy.
func (OpenWhisk) Name() string { return "openwhisk" }

// Serve implements simulate.Policy.
func (OpenWhisk) Serve(env *simulate.Env, n *simulate.Node, fn *simulate.Function, now time.Duration) (simulate.Decision, bool) {
	if d, ok := warmOrNil(n, fn, now); ok {
		return d, true
	}
	if !n.CanPlaceFor(now, env.GrantFor(fn)) {
		return simulate.Decision{}, false
	}
	return simulate.Decision{
		Kind: metrics.StartCold,
		Init: env.Profile.SandboxInit,
		Load: env.Profile.ModelLoad(fn.Model).Total(),
	}, true
}

// Pagurus repurposes a warm-but-idle container of another function: the
// sandbox and runtime (with the common ML packages) are reused, saving the
// initialization latency, but the new model still loads from scratch —
// exactly why Pagurus gains little for ML inference (§1, §2.2).
type Pagurus struct{}

// Name implements simulate.Policy.
func (Pagurus) Name() string { return "pagurus" }

// Serve implements simulate.Policy.
func (Pagurus) Serve(env *simulate.Env, n *simulate.Node, fn *simulate.Function, now time.Duration) (simulate.Decision, bool) {
	if d, ok := warmOrNil(n, fn, now); ok {
		return d, true
	}
	if idle := n.RepurposeCandidates(env, fn, now); len(idle) > 0 {
		return simulate.Decision{
			Kind:  metrics.StartTransform,
			Load:  env.Profile.ModelLoad(fn.Model).Total(),
			Reuse: oldestIdle(idle, now),
		}, true
	}
	if !n.CanPlaceFor(now, env.GrantFor(fn)) {
		return simulate.Decision{}, false
	}
	return simulate.Decision{
		Kind: metrics.StartCold,
		Init: env.Profile.SandboxInit,
		Load: env.Profile.ModelLoad(fn.Model).Total(),
	}, true
}

// Tetris starts a new container whose runtime and identical tensors are
// memory-mapped from containers already running on the node: operations with
// the same type, shape and weights as any co-located operation are shared
// instead of loaded (Li et al., ATC '22). Heterogeneous models share little,
// which is the limitation Optimus overcomes (§2.1).
type Tetris struct {
	// ForkInit is the latency of mapping the runtime from an existing
	// container instead of initializing a fresh sandbox.
	ForkInit time.Duration
}

// Name implements simulate.Policy.
func (Tetris) Name() string { return "tetris" }

// Serve implements simulate.Policy.
func (t Tetris) Serve(env *simulate.Env, n *simulate.Node, fn *simulate.Function, now time.Duration) (simulate.Decision, bool) {
	if d, ok := warmOrNil(n, fn, now); ok {
		return d, true
	}
	if !n.CanPlaceFor(now, env.GrantFor(fn)) {
		return simulate.Decision{}, false
	}
	if !n.AnyContainer() {
		return simulate.Decision{
			Kind: metrics.StartCold,
			Init: env.Profile.SandboxInit,
			Load: env.Profile.ModelLoad(fn.Model).Total(),
		}, true
	}
	forkInit := t.ForkInit
	if forkInit == 0 {
		forkInit = 30 * time.Millisecond
	}
	// Mapping the runtime replaces language/framework boot, but the new
	// container itself must still be created.
	return simulate.Decision{
		Kind: metrics.StartTransform,
		Init: env.Profile.ContainerCreate + forkInit,
		Load: t.sharedLoad(env, n, fn),
	}, true
}

// sharedLoad computes fn's model-load latency when every operation identical
// to one in a co-located container is shared for free.
func (t Tetris) sharedLoad(env *simulate.Env, n *simulate.Node, fn *simulate.Function) time.Duration {
	type opKey struct {
		typ     model.OpType
		shape   model.Shape
		weights uint64
	}
	avail := make(map[opKey]bool)
	for _, c := range n.Containers {
		for _, op := range c.Fn.Model.Ops() {
			avail[opKey{op.Type, op.Shape, op.WeightsID}] = true
		}
	}
	var load time.Duration
	load += env.Profile.DeserializeBase
	for _, op := range fn.Model.Ops() {
		if avail[opKey{op.Type, op.Shape, op.WeightsID}] {
			continue
		}
		load += env.Profile.OpLoad(op)
	}
	return load
}

// Optimus transforms the model inside a warm-but-idle container of another
// function into the requested model via the cached meta-operator plan
// (§4.4 Module 3). Among eligible idle containers it picks the cheapest
// transformation source; the safeguard falls back to loading from scratch
// inside the reused container (still saving sandbox init) when
// transformation would be slower.
type Optimus struct{}

// Name implements simulate.Policy.
func (Optimus) Name() string { return "optimus" }

// Serve implements simulate.Policy.
func (Optimus) Serve(env *simulate.Env, n *simulate.Node, fn *simulate.Function, now time.Duration) (simulate.Decision, bool) {
	if d, ok := warmOrNil(n, fn, now); ok {
		return d, true
	}
	if idle := n.RepurposeCandidates(env, fn, now); len(idle) > 0 {
		best, plan := pickSource(env, idle, fn)
		load := plan.TrueCost(env.Profile, best.Fn.Model)
		if plan.LoadFromScratch {
			load = env.Profile.ModelLoad(fn.Model).Total()
		}
		return simulate.Decision{
			Kind:  metrics.StartTransform,
			Load:  load,
			Reuse: best,
			Plan:  plan,
		}, true
	}
	if !n.CanPlaceFor(now, env.GrantFor(fn)) {
		return simulate.Decision{}, false
	}
	return simulate.Decision{
		Kind: metrics.StartCold,
		Init: env.Profile.SandboxInit,
		Load: env.Profile.ModelLoad(fn.Model).Total(),
	}, true
}

// pickSource returns the idle container with the cheapest (estimated)
// transformation into fn's model, with its plan.
func pickSource(env *simulate.Env, idle []*simulate.Container, fn *simulate.Function) (*simulate.Container, *metaop.Plan) {
	var best *simulate.Container
	var bestPlan *metaop.Plan
	for _, c := range idle {
		p := env.Plans.GetOrPlan(env.Planner, c.Fn.Model, fn.Model)
		cost := p.EstCost
		if p.LoadFromScratch {
			cost = p.ScratchCost
		}
		if bestPlan == nil || cost < bestEstCost(bestPlan) {
			best, bestPlan = c, p
		}
	}
	return best, bestPlan
}

func bestEstCost(p *metaop.Plan) time.Duration {
	if p.LoadFromScratch {
		return p.ScratchCost
	}
	return p.EstCost
}

// oldestIdle returns the container idle the longest (Pagurus repurposes the
// most-stale container first, minimizing interference with its own function).
func oldestIdle(idle []*simulate.Container, now time.Duration) *simulate.Container {
	best := idle[0]
	for _, c := range idle[1:] {
		if c.IdleFor(now) > best.IdleFor(now) {
			best = c
		}
	}
	return best
}

// All returns the four compared policies in presentation order.
func All() []simulate.Policy {
	return []simulate.Policy{OpenWhisk{}, Pagurus{}, Tetris{}, Optimus{}}
}
